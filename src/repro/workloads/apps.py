"""Application-benchmark models (paper Figure 6 and Table 2).

Five applications, matching the paper's set: **whetstone** and
**dhrystone** (compute-bound, a handful of kernel crossings at startup),
**untar** (metadata storm: a directory tree of small files), **iozone**
(bulk file I/O over few files) and **apache** (request loop: sockets,
stat/open/read of documents, logging, periodic CGI forks).

Each model is an operation *generator* against the simulated kernel —
the same code runs on all three system configurations, so the relative
runtimes of Figure 6 and the monitor trap counts of Table 2 come from
mechanism, not from per-configuration constants.

``scale`` shrinks the work linearly (default benchmarks use scaled-down
runs; event-count *ratios* are scale-invariant, which the test suite
asserts).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional

from repro.core.hypernel import System
from repro.kernel.process import Task


@dataclass
class AppRunResult:
    """Outcome of one application run."""

    name: str
    cycles: int
    microseconds: float


class ApplicationWorkload(abc.ABC):
    """Base class: spawn-a-process + app-specific body + exit."""

    name = "app"

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale

    def _scaled(self, value: int, minimum: int = 1) -> int:
        return max(minimum, int(round(value * self.scale)))

    # ------------------------------------------------------------------
    def prepare(self, system: System, shell: Task) -> None:
        """Pre-existing filesystem state (installed before the run)."""

    @abc.abstractmethod
    def body(self, system: System, task: Task) -> None:
        """The application's own work (runs as ``task``)."""

    # ------------------------------------------------------------------
    def run(self, system: System, shell: Optional[Task] = None) -> AppRunResult:
        """Launch the app via ``sh -c`` (two fork+execs), run it, reap it."""
        kernel = system.kernel
        if shell is None:
            shell = kernel.procs.current or system.spawn_init()
        start = system.now
        # The benchmark harness shell forks a subshell...
        subshell = kernel.sys.fork(shell)
        kernel.procs.context_switch(subshell)
        kernel.sys.execv(subshell)
        # ... which forks and execs the application itself.
        task = kernel.sys.fork(subshell)
        kernel.procs.context_switch(task)
        kernel.sys.execv(task)
        self.body(system, task)
        kernel.sys.exit(task)
        kernel.procs.context_switch(subshell)
        kernel.sys.wait(subshell)
        kernel.sys.exit(subshell)
        kernel.procs.context_switch(shell)
        kernel.sys.wait(shell)
        cycles = system.now - start
        return AppRunResult(self.name, cycles, system.cycles_to_us(cycles))

    # ------------------------------------------------------------------
    # Shared building blocks
    # ------------------------------------------------------------------
    def _startup_linking(self, system: System, task: Task, libs: int) -> None:
        """Dynamic-linker startup: stat/open shared libraries."""
        kernel = system.kernel
        for index in range(libs):
            path = f"/usr/lib/lib{index:02d}.so"
            kernel.sys.stat(task, path)
            handle = kernel.sys.open(task, path)
            kernel.sys.read(task, handle, 4096)
            kernel.sys.close(task, handle)

    def _ensure_libs(self, system: System, libs: int) -> None:
        vfs = system.kernel.vfs
        vfs.mkdir_p("/usr/lib")
        for index in range(libs):
            path = f"/usr/lib/lib{index:02d}.so"
            if vfs.lookup(path) is None:
                node = vfs.create(path)
                handle = vfs.open(path)
                vfs.write_file(handle, 16 * 1024)
                vfs.close(handle)


class WhetstoneWorkload(ApplicationWorkload):
    """Floating-point compute loop; kernel activity only at the edges."""

    name = "whetstone"
    LIBS = 6
    COMPUTE_CYCLES = 36_000_000  # ~31 ms at 1.15 GHz
    CHUNKS = 40

    def prepare(self, system: System, shell: Task) -> None:
        self._ensure_libs(system, self.LIBS)
        system.kernel.vfs.mkdir_p("/tmp")

    def body(self, system: System, task: Task) -> None:
        kernel = system.kernel
        self._startup_linking(system, task, self.LIBS)
        chunks = self._scaled(self.CHUNKS)
        per_chunk = int(self.COMPUTE_CYCLES * self.scale) // max(1, chunks)
        for _ in range(chunks):
            kernel.cpu.compute(per_chunk)
        out = kernel.sys.open(task, f"/tmp/{self.name}.out", create=True)
        kernel.sys.write(task, out, 512)
        kernel.sys.close(task, out)
        kernel.vfs.unlink(f"/tmp/{self.name}.out")


class DhrystoneWorkload(WhetstoneWorkload):
    """Integer compute loop; same structure, slightly different mix."""

    name = "dhrystone"
    LIBS = 10
    COMPUTE_CYCLES = 30_000_000
    CHUNKS = 30


class UntarWorkload(ApplicationWorkload):
    """tar -x of a source tree: the dentry-churn storm of Table 2.

    Per extracted file tar performs (see GNU tar + glibc traces):
    archive read, create, open, data write, fchmod, fchown, utimensat —
    each path-touching call walking the directory chain through the
    dentry cache.
    """

    name = "untar"
    FILES = 400
    DIR_FANOUT = 16          #: files per directory
    DEPTH = 3                #: directory nesting below /untar
    FILE_BYTES = 8 * 1024
    USER_CYCLES_PER_FILE = 9_000  #: decompression work

    def prepare(self, system: System, shell: Task) -> None:
        vfs = system.kernel.vfs
        vfs.mkdir_p("/untar")
        if vfs.lookup("/archive.tar") is None:
            node = vfs.create("/archive.tar")
            handle = vfs.open("/archive.tar")
            vfs.write_file(handle, self._scaled(self.FILES) * 512)
            vfs.close(handle)

    #: monotonically increasing extraction-directory id (unique even
    #: across workload instances sharing one filesystem).
    _next_run_id = 0

    def __init__(self, scale: float = 1.0):
        super().__init__(scale)
        self._run_id = 0

    def _dir_for(self, index: int) -> str:
        """Nested directory path for file ``index``."""
        bucket = index // self.DIR_FANOUT
        parts = [f"r{self._run_id}"]
        for _ in range(self.DEPTH):
            parts.append(f"d{bucket % 8}")
            bucket //= 8
        return "/untar/" + "/".join(parts)

    def body(self, system: System, task: Task) -> None:
        kernel = system.kernel
        sys = kernel.sys
        UntarWorkload._next_run_id += 1  # fresh extraction dir per run
        self._run_id = UntarWorkload._next_run_id
        archive = sys.open(task, "/archive.tar")
        files = self._scaled(self.FILES)
        made_dirs = set()
        for index in range(files):
            directory = self._dir_for(index)
            if directory not in made_dirs:
                kernel.vfs.mkdir_p(directory)
                made_dirs.add(directory)
            path = f"{directory}/f{index}.c"
            sys.read(task, archive, 512)          # archive header+data
            if index % 16 == 0:
                # Sequential archive reads come in via readahead batches.
                kernel.env.block_io(128 * 1024)
            kernel.cpu.compute(self.USER_CYCLES_PER_FILE)
            sys.creat(task, path)
            handle = sys.open(task, path)
            sys.write(task, handle, self.FILE_BYTES)
            sys.fchmod(task, handle, 0o644)
            sys.fchown(task, handle, 1000, 1000)
            sys.futimes(task, handle)
            sys.close(task, handle)
            if index % 4 == 3:
                # Dirty page-cache pages drain in writeback batches.
                kernel.env.block_io(4 * self.FILE_BYTES)
        sys.close(task, archive)


class IozoneWorkload(ApplicationWorkload):
    """Sequential write/rewrite/read/reread phases over one test file."""

    name = "iozone"
    FILE_BYTES = 4 * 1024 * 1024
    CHUNK = 128 * 1024
    PASSES = 2
    #: iozone's sequential tests: write, rewrite, read, reread, random
    #: read/write, backward read, stride read (one open/close each).
    PHASES = (True, True, False, False, False, True, False, False)
    USER_CYCLES_PER_CHUNK = 4_000

    def body(self, system: System, task: Task) -> None:
        kernel = system.kernel
        sys = kernel.sys
        file_bytes = self._scaled(self.FILE_BYTES, minimum=self.CHUNK)
        chunks = max(1, file_bytes // self.CHUNK)
        for _ in range(self.PASSES):
            path = "/tmp/iozone.tmp"
            kernel.vfs.mkdir_p("/tmp")
            sys.creat(task, path)
            for phase_is_write in self.PHASES:
                # iozone reopens the test file for every phase.
                handle = sys.open(task, path)
                written = 0
                for _ in range(chunks):
                    if phase_is_write:
                        sys.write(task, handle, self.CHUNK)
                        written += self.CHUNK
                        if written >= 1024 * 1024:
                            # Writeback drains dirty data in ~1 MB batches;
                            # re-reads are served from the page cache.
                            kernel.env.block_io(written)
                            written = 0
                    else:
                        sys.read(task, handle, self.CHUNK)
                    kernel.cpu.compute(self.USER_CYCLES_PER_CHUNK)
                if written:
                    kernel.env.block_io(written)
                sys.close(task, handle)
            sys.unlink(task, path)


class ApacheWorkload(ApplicationWorkload):
    """HTTP request loop: sockets, docroot lookups, logging, CGI forks."""

    name = "apache"
    REQUESTS = 300
    DOCS = 24
    DOC_BYTES = 4 * 1024
    CGI_EVERY = 15           #: one fork+exec per this many requests
    USER_CYCLES_PER_REQ = 14_000

    def prepare(self, system: System, shell: Task) -> None:
        vfs = system.kernel.vfs
        vfs.mkdir_p("/www/docs")
        for index in range(self.DOCS):
            path = f"/www/docs/page{index}.html"
            if vfs.lookup(path) is None:
                vfs.create(path)
                handle = vfs.open(path)
                vfs.write_file(handle, self.DOC_BYTES)
                vfs.close(handle)

    def body(self, system: System, task: Task) -> None:
        kernel = system.kernel
        sys = kernel.sys
        sockets = sys.socketpair(task)
        log = sys.open(task, "/www/access.log", create=True)
        requests = self._scaled(self.REQUESTS)
        for index in range(requests):
            kernel.env.net_io(1)                   # request arrives
            sys.sock_recv(task, sockets, "a", 256)
            path = f"/www/docs/page{index % self.DOCS}.html"
            sys.stat(task, path)
            handle = sys.open(task, path)
            sys.read(task, handle, self.DOC_BYTES)
            sys.close(task, handle)
            kernel.cpu.compute(self.USER_CYCLES_PER_REQ)
            sys.sock_send(task, sockets, "b", self.DOC_BYTES)
            kernel.env.net_io(1)                   # response leaves
            sys.write(task, log, 128)              # access log line
            if index % self.CGI_EVERY == self.CGI_EVERY - 1:
                self._cgi(system, task)
        sys.close(task, log)

    def _cgi(self, system: System, parent: Task) -> None:
        kernel = system.kernel
        sys = kernel.sys
        child = sys.fork(parent)
        kernel.procs.context_switch(child)
        sys.execv(child)
        tmp = f"/tmp/cgi{child.pid}.tmp"
        kernel.vfs.mkdir_p("/tmp")
        sys.creat(child, tmp)
        handle = sys.open(child, tmp)
        sys.write(child, handle, 1024)
        sys.close(child, handle)
        sys.unlink(child, tmp)
        sys.exit(child)
        kernel.procs.context_switch(parent)
        sys.wait(parent)


def default_applications(scale: float = 1.0) -> List[ApplicationWorkload]:
    """The paper's five applications, in Table 2 order."""
    return [
        WhetstoneWorkload(scale),
        DhrystoneWorkload(scale),
        UntarWorkload(scale),
        IozoneWorkload(scale),
        ApacheWorkload(scale),
    ]
