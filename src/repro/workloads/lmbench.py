"""LMbench-style micro-operation drivers (paper Table 1).

Each driver performs one kernel operation against a
:class:`~repro.core.hypernel.System` exactly as the LMbench harness
exercises it — including the orchestration LMbench's processes do
(token ping-pong through pipes/sockets with context switches, fork with
the child exiting immediately, page-fault loops over a fresh mapping).

Latency is measured on the simulation clock over ``iterations`` runs
after ``warmup`` runs (steady state: caches, TLBs and, for the KVM
configuration, stage-2 mappings are warm — matching how LMbench
reports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.config import PAGE_BYTES
from repro.core.hypernel import System
from repro.kernel.process import Task

#: Table 1 row names, in the paper's order.
LMBENCH_OPS = [
    "syscall stat",
    "signal install",
    "signal ovh",
    "pipe lat",
    "socket lat",
    "fork+exit",
    "fork+execv",
    "page fault",
    "mmap",
]


@dataclass
class OpResult:
    """One measured micro-operation."""

    name: str
    microseconds: float
    iterations: int


class LmbenchSuite:
    """Runs the Table 1 operations on one system."""

    def __init__(self, system: System, warmup: int = 4, iterations: int = 16,
                 engine=None):
        self.system = system
        self.warmup = warmup
        self.iterations = iterations
        #: optional :class:`repro.tools.macroops.MacroOpEngine`; when
        #: set, the warmup and measured loops go through it so periodic
        #: operations are replayed instead of re-simulated (clock and
        #: counters stay bit-identical to the plain loop).
        self.engine = engine
        self._init_task: Optional[Task] = None
        self._partner: Optional[Task] = None
        self._pipe = None
        self._sockets = None
        self._fault_vma = None
        self._fault_cursor = 0

    # ------------------------------------------------------------------
    # Environment setup (LMbench's harness work, untimed)
    # ------------------------------------------------------------------
    def setup(self) -> None:
        system = self.system
        kernel = system.kernel
        if kernel.procs.current is None:
            self._init_task = system.spawn_init()
        else:
            self._init_task = kernel.procs.current
        kernel.vfs.mkdir_p("/tmp")
        if kernel.vfs.lookup("/tmp/lmbench") is None:
            kernel.sys.creat(self._init_task, "/tmp/lmbench")
        # Partner process for the latency ping-pongs.
        self._partner = kernel.sys.fork(self._init_task)
        self._pipe = kernel.sys.pipe(self._init_task)
        self._sockets = kernel.sys.socketpair(self._init_task)
        kernel.sys.sigaction(self._init_task, 10)

    @property
    def task(self) -> Task:
        if self._init_task is None:
            raise RuntimeError("call setup() first")
        return self._init_task

    # ------------------------------------------------------------------
    # Individual operations
    # ------------------------------------------------------------------
    def op_syscall_stat(self) -> None:
        self.system.kernel.sys.stat(self.task, "/tmp/lmbench")

    def op_signal_install(self) -> None:
        self.system.kernel.sys.sigaction(self.task, 10)

    def op_signal_ovh(self) -> None:
        self.system.kernel.sys.kill_self(self.task, 10)

    def op_pipe_lat(self) -> None:
        """One-way pipe latency: half a token round trip."""
        kernel = self.system.kernel
        procs = kernel.procs
        kernel.sys.pipe_write(self.task, self._pipe, 8)
        procs.context_switch(self._partner)
        kernel.sys.pipe_read(self._partner, self._pipe, 8)
        kernel.sys.pipe_write(self._partner, self._pipe, 8)
        procs.context_switch(self.task)
        kernel.sys.pipe_read(self.task, self._pipe, 8)

    def op_socket_lat(self) -> None:
        kernel = self.system.kernel
        procs = kernel.procs
        kernel.sys.sock_send(self.task, self._sockets, "a", 8)
        procs.context_switch(self._partner)
        kernel.sys.sock_recv(self._partner, self._sockets, "a", 8)
        kernel.sys.sock_send(self._partner, self._sockets, "b", 8)
        procs.context_switch(self.task)
        kernel.sys.sock_recv(self.task, self._sockets, "b", 8)

    def op_fork_exit(self) -> None:
        kernel = self.system.kernel
        child = kernel.sys.fork(self.task)
        kernel.procs.context_switch(child)
        kernel.sys.exit(child)
        kernel.procs.context_switch(self.task)
        kernel.sys.wait(self.task)

    def op_fork_execv(self) -> None:
        kernel = self.system.kernel
        child = kernel.sys.fork(self.task)
        kernel.procs.context_switch(child)
        kernel.sys.execv(child)
        kernel.sys.exit(child)
        kernel.procs.context_switch(self.task)
        kernel.sys.wait(self.task)

    def _fresh_fault_region(self) -> None:
        kernel = self.system.kernel
        if self._fault_vma is not None:
            kernel.sys.munmap(self.task, self._fault_vma)
        self._fault_vma = kernel.sys.mmap(self.task, 256 * PAGE_BYTES)
        self._fault_cursor = 0

    def op_page_fault(self) -> None:
        """Touch one never-touched page of an anonymous mapping."""
        kernel = self.system.kernel
        if self._fault_vma is None or self._fault_cursor >= 256:
            self._fresh_fault_region()
        vaddr = self._fault_vma.start + self._fault_cursor * PAGE_BYTES
        self._fault_cursor += 1
        kernel.vmm.user_touch(self.task.mm, vaddr, is_write=True, value=1)

    def op_mmap(self) -> None:
        """Map 64 KB, touch it, unmap (lat_mmap's per-iteration work)."""
        kernel = self.system.kernel
        vma = kernel.sys.mmap(self.task, 16 * PAGE_BYTES)
        for page in range(8):
            kernel.vmm.user_touch(
                self.task.mm, vma.start + page * PAGE_BYTES,
                is_write=True, value=1,
            )
        kernel.sys.munmap(self.task, vma)

    # ------------------------------------------------------------------
    # Harness
    # ------------------------------------------------------------------
    def _driver(self, name: str) -> Callable[[], None]:
        drivers: Dict[str, Callable[[], None]] = {
            "syscall stat": self.op_syscall_stat,
            "signal install": self.op_signal_install,
            "signal ovh": self.op_signal_ovh,
            "pipe lat": self.op_pipe_lat,
            "socket lat": self.op_socket_lat,
            "fork+exit": self.op_fork_exit,
            "fork+execv": self.op_fork_execv,
            "page fault": self.op_page_fault,
            "mmap": self.op_mmap,
        }
        return drivers[name]

    #: extra warmup for ops whose steady state needs many iterations
    #: (the page-fault loop must cycle its whole region at least once so
    #: frame reuse is warm, in all three configurations).
    EXTRA_WARMUP = {"page fault": 300, "mmap": 40}

    def _loop(self, key: str, driver: Callable[[], None], count: int) -> None:
        if self.engine is not None:
            self.engine.run_repeated(key, driver, count)
        else:
            for _ in range(count):
                driver()

    def run_op(self, name: str) -> OpResult:
        """Measure one operation (µs per iteration, steady state)."""
        driver = self._driver(name)
        self._loop(name, driver,
                   max(self.warmup, self.EXTRA_WARMUP.get(name, 0)))
        clock = self.system.platform.clock
        start = clock.now
        self._loop(name, driver, self.iterations)
        cycles = clock.elapsed_since(start)
        per_op = cycles / self.iterations
        # pipe/socket drivers above run a full round trip: report one way.
        if name in ("pipe lat", "socket lat"):
            per_op /= 2
        return OpResult(name, self.system.cycles_to_us(int(per_op)),
                        self.iterations)

    def run_all(self) -> List[OpResult]:
        """Measure every Table 1 operation, in the paper's order."""
        if self._init_task is None:
            self.setup()
        return [self.run_op(name) for name in LMBENCH_OPS]
