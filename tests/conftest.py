"""Shared fixtures: small, fast system configurations."""

import pytest

from repro.config import PlatformConfig
from repro.core.hypernel import build_hypernel, build_kvm_guest, build_native
from repro.kernel.kernel import KernelConfig
from repro.security import CredIntegrityMonitor, DentryIntegrityMonitor


def small_platform_config() -> PlatformConfig:
    return PlatformConfig(
        dram_bytes=64 * 1024 * 1024,
        secure_bytes=8 * 1024 * 1024,
    )


@pytest.fixture
def platform_config():
    return small_platform_config()


@pytest.fixture
def native_system():
    return build_native(platform_config=small_platform_config())


@pytest.fixture
def native_page_system():
    """Native kernel with the 4 KB linear map (for ATRA-style PTE work)."""
    return build_native(
        platform_config=small_platform_config(),
        kernel_config=KernelConfig(linear_map_mode="page"),
    )


@pytest.fixture
def kvm_system():
    return build_kvm_guest(platform_config=small_platform_config())


@pytest.fixture
def hypernel_system():
    """Hypernel with Hypersec only (the paper's 7.1 configuration)."""
    return build_hypernel(
        platform_config=small_platform_config(), with_mbm=False
    )


@pytest.fixture
def monitored_system():
    """Hypernel with MBM + the two word-granularity monitors (7.2)."""
    return build_hypernel(
        platform_config=small_platform_config(),
        monitors=[CredIntegrityMonitor(), DentryIntegrityMonitor()],
    )
