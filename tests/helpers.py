"""Shared test utilities: small platforms and hand-built page tables."""

from __future__ import annotations

from repro.config import PAGE_BYTES, PlatformConfig
from repro.hw.platform import Platform
from repro.arch.cpu import CPUCore
from repro.arch.pagetable import (
    KERNEL_VA_BASE,
    index_for_level,
    make_block_desc,
    make_page_desc,
    make_table_desc,
    split_vaddr,
)
from repro.arch.registers import SCTLR_M


def small_config(**overrides) -> PlatformConfig:
    """A 64 MB platform that keeps tests fast."""
    defaults = dict(
        dram_bytes=64 * 1024 * 1024,
        secure_bytes=8 * 1024 * 1024,
    )
    defaults.update(overrides)
    return PlatformConfig(**defaults)


def small_platform(**overrides) -> Platform:
    return Platform(small_config(**overrides))


class TableBuilder:
    """Builds translation tables directly in simulated memory.

    A bump allocator carves table pages out of a caller-supplied physical
    region; descriptors are written with the bus backdoor (no timing) so
    tests can focus on the walker's behaviour.
    """

    def __init__(self, platform: Platform, pool_base: int):
        self.platform = platform
        self._next_page = pool_base
        self.root = self.alloc_page()

    def alloc_page(self) -> int:
        paddr = self._next_page
        self._next_page += PAGE_BYTES
        for offset in range(0, PAGE_BYTES, 8):
            self.platform.bus.poke(paddr + offset, 0)
        return paddr

    def _desc_addr(self, table: int, offset: int, level: int) -> int:
        return table + index_for_level(offset, level) * 8

    def _walk_to(self, offset: int, leaf_level: int) -> int:
        """Descend (creating tables) to the table holding the leaf."""
        table = self.root
        for level in (1, 2):
            if level == leaf_level:
                return table
            desc_addr = self._desc_addr(table, offset, level)
            raw = self.platform.bus.peek(desc_addr)
            if raw & 1:
                table = raw & ~0xFFF & ((1 << 48) - 1)
            else:
                new_table = self.alloc_page()
                self.platform.bus.poke(desc_addr, make_table_desc(new_table))
                table = new_table
        return table

    def map_page(self, vaddr: int, paddr: int, **attrs) -> None:
        """Map one 4 KB page at ``vaddr``."""
        _, offset = split_vaddr(vaddr)
        table = self._walk_to(offset, leaf_level=3)
        desc_addr = self._desc_addr(table, offset, 3)
        self.platform.bus.poke(desc_addr, make_page_desc(paddr, **attrs))

    def map_block(self, vaddr: int, paddr: int, **attrs) -> None:
        """Map one 2 MB block at ``vaddr``."""
        _, offset = split_vaddr(vaddr)
        table = self._walk_to(offset, leaf_level=2)
        desc_addr = self._desc_addr(table, offset, 2)
        self.platform.bus.poke(desc_addr, make_block_desc(paddr, **attrs))

    def map_range(self, vaddr: int, paddr: int, nbytes: int, **attrs) -> None:
        """Map a page-aligned range with 4 KB pages."""
        for off in range(0, nbytes, PAGE_BYTES):
            self.map_page(vaddr + off, paddr + off, **attrs)


def cpu_with_kernel_map(platform: Platform | None = None):
    """A CPU whose TTBR1 linearly maps all of DRAM at KERNEL_VA_BASE.

    Returns ``(cpu, builder)``; the builder's pool sits in the last
    non-secure megabyte of DRAM.
    """
    platform = platform or small_platform()
    pool = platform.secure_base - 4 * 1024 * 1024
    builder = TableBuilder(platform, pool)
    base = platform.config.dram_base
    # Map DRAM below the table pool with 2 MB blocks for brevity.
    for off in range(0, pool - base, 2 * 1024 * 1024):
        builder.map_block(KERNEL_VA_BASE + off, base + off, writable=True)
    cpu = CPUCore(platform)
    cpu.regs.write("TTBR1_EL1", builder.root)
    cpu.regs.set_bits("SCTLR_EL1", SCTLR_M)
    return cpu, builder


def kva(platform: Platform, paddr: int) -> int:
    """Kernel linear-map VA for a physical address."""
    return KERNEL_VA_BASE + (paddr - platform.config.dram_base)
