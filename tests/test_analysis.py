"""Unit tests for the analysis helpers and paper constants."""

import pytest

from repro.analysis import paper
from repro.analysis.compare import (
    arithmetic_mean,
    format_table,
    geometric_mean,
    overhead_percent,
    shape_report,
)
from repro.analysis.tables import Table1Result
from repro.analysis.monitoring import Table2Result
from repro.analysis.figures import Figure6Result
from repro.workloads.lmbench import LMBENCH_OPS


class TestMath:
    def test_overhead_percent(self):
        assert overhead_percent(1.10, 1.0) == pytest.approx(10.0)
        assert overhead_percent(1.0, 1.0) == pytest.approx(0.0)

    def test_overhead_requires_positive_baseline(self):
        with pytest.raises(ValueError):
            overhead_percent(1.0, 0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_guards(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_shape_report(self):
        text = shape_report({"kvm": 10.0}, {"kvm": 15.5})
        assert "+10.0%" in text and "+15.5%" in text


class TestPaperConstants:
    def test_table1_covers_all_ops(self):
        assert set(paper.TABLE1) == set(LMBENCH_OPS)

    def test_table1_kvm_generally_slower(self):
        slower = sum(
            1 for row in paper.TABLE1.values()
            if row["kvm-guest"] > row["native"]
        )
        assert slower >= 7  # stat is the one noisy exception

    def test_table2_ratios_are_single_digit_percent(self):
        for app, row in paper.TABLE2.items():
            ratio = row["word"] / row["page"] * 100
            assert 3.0 < ratio < 10.0, app

    def test_headline_averages(self):
        assert paper.LMBENCH_AVG_OVERHEAD["hypernel"] < paper.LMBENCH_AVG_OVERHEAD["kvm-guest"]
        assert paper.APP_AVG_OVERHEAD["hypernel"] < paper.APP_AVG_OVERHEAD["kvm-guest"]


class TestResultContainers:
    def test_table1_average_overhead(self):
        result = Table1Result(rows={
            "op-a": {"native": 1.0, "kvm-guest": 1.2, "hypernel": 1.1},
            "op-b": {"native": 2.0, "kvm-guest": 2.2, "hypernel": 2.0},
        })
        assert result.average_overhead("kvm-guest") == pytest.approx(15.0)
        assert result.average_overhead("hypernel") == pytest.approx(5.0)

    def test_table2_ratios(self):
        result = Table2Result(counts={
            "app": {"page": 200, "word": 10},
            "other": {"page": 100, "word": 20},
        })
        assert result.ratio_percent("app") == pytest.approx(5.0)
        assert result.mean_ratio_percent() == pytest.approx(10.0)

    def test_table2_zero_page_count(self):
        result = Table2Result(counts={"app": {"page": 0, "word": 0}})
        assert result.ratio_percent("app") == 0.0
        assert result.mean_ratio_percent() == 0.0

    def test_figure6_average(self):
        result = Figure6Result(normalized={
            "a": {"native": 1.0, "kvm-guest": 1.2, "hypernel": 1.1},
            "b": {"native": 1.0, "kvm-guest": 1.0, "hypernel": 1.0},
        })
        assert result.average_overhead("kvm-guest") == pytest.approx(10.0)
        assert result.average_overhead("hypernel") == pytest.approx(5.0)

    def test_figure6_chart(self):
        result = Figure6Result(normalized={
            "a": {"native": 1.0, "kvm-guest": 1.5, "hypernel": 1.1},
        })
        chart = result.ascii_chart(width=20)
        assert "kvm-guest" in chart
