"""Tests for the markdown evaluation-report generator."""

import pytest

from repro.analysis.report import generate_report
from tests.conftest import small_platform_config


@pytest.fixture(scope="module")
def report():
    return generate_report(
        scale=0.05,
        platform_factory=small_platform_config,
        include_attacks=True,
    )


class TestReport:
    def test_contains_all_sections(self, report):
        for heading in ("## Table 1", "## Figure 6", "## Table 2",
                        "## Attack matrix"):
            assert heading in report

    def test_table1_rows_complete(self, report):
        from repro.workloads.lmbench import LMBENCH_OPS
        for op in LMBENCH_OPS:
            assert f"| {op} |" in report

    def test_paper_columns_present(self, report):
        assert "paper kvm" in report
        assert "271.68" in report  # paper's native fork+exit

    def test_attack_verdicts(self, report):
        assert "silent success" in report   # native column
        assert "blocked" in report          # hypernel column

    def test_is_valid_markdown_tables(self, report):
        """Every table row has a consistent column count."""
        lines = report.splitlines()
        for index, line in enumerate(lines):
            if line.startswith("|---"):
                columns = line.count("|")
                block = index + 1
                while block < len(lines) and lines[block].startswith("|"):
                    assert lines[block].count("|") == columns, lines[block]
                    block += 1

    def test_attacks_can_be_skipped(self):
        text = generate_report(
            scale=0.05,
            platform_factory=small_platform_config,
            include_attacks=False,
        )
        assert "## Attack matrix" not in text
