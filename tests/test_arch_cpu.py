"""Unit tests for the CPU core: access, MSR trapping, HVC, VM exits."""

import pytest

from repro.errors import SimulationError, Stage2Fault, TrappedInstruction
from repro.arch.cpu import CPUCore
from repro.arch.exceptions import EL2, EL2Vector
from repro.arch.pagetable import KERNEL_VA_BASE
from repro.arch.registers import HCR_TVM, HCR_VM
from tests.helpers import TableBuilder, cpu_with_kernel_map, small_platform

BASE = 0x8000_0000


class RecordingVector(EL2Vector):
    """An EL2 resident that records everything routed to it."""

    def __init__(self):
        self.hvc_calls = []
        self.msr_calls = []
        self.s2_faults = []

    def handle_hvc(self, cpu, func, args):
        assert cpu.current_el == EL2
        self.hvc_calls.append((func, tuple(args)))
        return 0xE0 + func

    def handle_trapped_msr(self, cpu, register, value):
        assert cpu.current_el == EL2
        self.msr_calls.append((register, value))
        cpu.regs.write(register, value)

    def handle_stage2_fault(self, cpu, fault):
        self.s2_faults.append(fault)
        # Install the missing stage-2 mapping (identity) and return.
        builder = self._builder
        builder.map_page(fault.ipa & ~0xFFF, fault.ipa & ~0xFFF)
        cpu.mmu.invalidate_stage2()


class TestMemoryAccess:
    def test_read_write_via_kernel_map(self):
        cpu, _ = cpu_with_kernel_map()
        vaddr = KERNEL_VA_BASE + 0x9000
        cpu.write(vaddr, 0x1122)
        assert cpu.read(vaddr) == 0x1122

    def test_block_write_spanning_pages(self):
        cpu, _ = cpu_with_kernel_map()
        vaddr = KERNEL_VA_BASE + 0x9F00  # crosses into the next page
        cpu.write_block(vaddr, 100)
        assert cpu.stats.get("block_write_words") == 100

    def test_compute_charges_cycles(self):
        cpu, _ = cpu_with_kernel_map()
        before = cpu.clock.now
        cpu.compute(500)
        assert cpu.clock.now == before + 500

    def test_split_pages_chunking(self):
        chunks = CPUCore._split_pages(KERNEL_VA_BASE + 4096 - 16, 10)
        assert chunks == [
            (KERNEL_VA_BASE + 4096 - 16, 2),
            (KERNEL_VA_BASE + 4096, 8),
        ]


class TestMsrTrapping:
    def test_untrapped_msr_writes_directly(self):
        cpu = CPUCore(small_platform())
        cpu.msr("TTBR1_EL1", 0x8000_1000)
        assert cpu.regs.read("TTBR1_EL1") == 0x8000_1000

    def test_tvm_traps_vm_register_writes(self):
        cpu = CPUCore(small_platform())
        vector = RecordingVector()
        cpu.install_el2_vector(vector)
        cpu.regs.set_bits("HCR_EL2", HCR_TVM)
        cpu.msr("TTBR1_EL1", 0x8000_2000)
        assert vector.msr_calls == [("TTBR1_EL1", 0x8000_2000)]
        assert cpu.regs.read("TTBR1_EL1") == 0x8000_2000
        assert cpu.stats.get("trapped_msr") == 1

    def test_trap_charges_transition_cycles(self):
        cpu = CPUCore(small_platform())
        cpu.install_el2_vector(RecordingVector())
        cpu.regs.set_bits("HCR_EL2", HCR_TVM)
        before = cpu.clock.now
        cpu.msr("TTBR0_EL1", 0x8000_3000)
        costs = cpu.costs
        assert cpu.clock.now >= before + costs.trap_entry + costs.trap_exit

    def test_el2_writes_never_trap(self):
        cpu = CPUCore(small_platform())
        vector = RecordingVector()
        cpu.install_el2_vector(vector)
        cpu.regs.set_bits("HCR_EL2", HCR_TVM)
        cpu.current_el = EL2
        cpu.msr("TTBR1_EL1", 0x8000_4000)
        assert vector.msr_calls == []

    def test_el1_cannot_touch_el2_registers(self):
        cpu = CPUCore(small_platform())
        with pytest.raises(TrappedInstruction):
            cpu.msr("HCR_EL2", 0)
        with pytest.raises(TrappedInstruction):
            cpu.mrs("VTTBR_EL2")

    def test_mrs_not_trapped_by_tvm(self):
        cpu = CPUCore(small_platform())
        vector = RecordingVector()
        cpu.install_el2_vector(vector)
        cpu.regs.set_bits("HCR_EL2", HCR_TVM)
        cpu.regs.write("TTBR1_EL1", 0x77000)
        assert cpu.mrs("TTBR1_EL1") == 0x77000
        assert vector.msr_calls == []


class TestHvc:
    def test_hvc_routes_to_vector(self):
        cpu = CPUCore(small_platform())
        vector = RecordingVector()
        cpu.install_el2_vector(vector)
        result = cpu.hvc(3, 10, 20)
        assert result == 0xE3
        assert vector.hvc_calls == [(3, (10, 20))]

    def test_hvc_without_el2_resident_rejected(self):
        cpu = CPUCore(small_platform())
        with pytest.raises(SimulationError):
            cpu.hvc(1)

    def test_hvc_restores_el_on_handler_error(self):
        cpu = CPUCore(small_platform())

        class Exploder(RecordingVector):
            def handle_hvc(self, cpu, func, args):
                raise RuntimeError("boom")

        cpu.install_el2_vector(Exploder())
        with pytest.raises(RuntimeError):
            cpu.hvc(1)
        assert cpu.current_el == 1


class TestVmExitRetry:
    def test_stage2_fault_triggers_vm_exit_and_retry(self):
        platform = small_platform()
        cpu = CPUCore(platform)
        s1 = TableBuilder(platform, BASE + 0x10_0000)
        s2 = TableBuilder(platform, BASE + 0x20_0000)
        vector = RecordingVector()
        vector._builder = s2
        guest_va = KERNEL_VA_BASE + 0x30_0000
        ipa = BASE + 0x100_0000
        s1.map_page(guest_va, ipa)
        for table_off in range(0, 0x10_000, 4096):
            s2.map_page(BASE + 0x10_0000 + table_off, BASE + 0x10_0000 + table_off)
        # No stage-2 mapping for `ipa`: first access must VM-exit.
        cpu.regs.write("TTBR1_EL1", s1.root)
        cpu.regs.set_bits("SCTLR_EL1", 1)
        cpu.regs.write("VTTBR_EL2", s2.root)
        cpu.regs.set_bits("HCR_EL2", HCR_VM)
        cpu.install_el2_vector(vector)
        cpu.write(guest_va, 0x55)
        assert cpu.stats.get("vm_exits") == 1
        assert len(vector.s2_faults) == 1
        assert cpu.read(guest_va) == 0x55
        assert cpu.stats.get("vm_exits") == 1  # mapped now, no more exits

    def test_stage2_fault_without_vector_propagates(self):
        platform = small_platform()
        cpu = CPUCore(platform)
        s1 = TableBuilder(platform, BASE + 0x10_0000)
        guest_va = KERNEL_VA_BASE + 0x30_0000
        s1.map_page(guest_va, BASE + 0x100_0000)
        cpu.regs.write("TTBR1_EL1", s1.root)
        cpu.regs.set_bits("SCTLR_EL1", 1)
        cpu.regs.write("VTTBR_EL2", BASE + 0x20_0000)
        platform.bus.poke(BASE + 0x20_0000, 0)
        cpu.regs.set_bits("HCR_EL2", HCR_VM)
        with pytest.raises(Stage2Fault):
            cpu.read(guest_va)

    def test_livelock_detected(self):
        platform = small_platform()
        cpu = CPUCore(platform)

        class DoNothing(RecordingVector):
            def handle_stage2_fault(self, cpu, fault):
                self.s2_faults.append(fault)  # never fixes the mapping

        vector = DoNothing()
        s1 = TableBuilder(platform, BASE + 0x10_0000)
        guest_va = KERNEL_VA_BASE + 0x30_0000
        s1.map_page(guest_va, BASE + 0x100_0000)
        s2 = TableBuilder(platform, BASE + 0x20_0000)
        for table_off in range(0, 0x10_000, 4096):
            s2.map_page(BASE + 0x10_0000 + table_off, BASE + 0x10_0000 + table_off)
        cpu.regs.write("TTBR1_EL1", s1.root)
        cpu.regs.set_bits("SCTLR_EL1", 1)
        cpu.regs.write("VTTBR_EL2", s2.root)
        cpu.regs.set_bits("HCR_EL2", HCR_VM)
        cpu.install_el2_vector(vector)
        with pytest.raises(SimulationError):
            cpu.read(guest_va)


class TestTlbiInstructions:
    def test_tlbi_all(self):
        cpu, _ = cpu_with_kernel_map()
        cpu.read(KERNEL_VA_BASE)
        assert len(cpu.mmu.tlb) > 0
        cpu.tlbi_all()
        assert len(cpu.mmu.tlb) == 0

    def test_tlbi_va_page_selective(self):
        cpu, _ = cpu_with_kernel_map()
        cpu.read(KERNEL_VA_BASE)
        cpu.read(KERNEL_VA_BASE + 0x1000)
        entries = len(cpu.mmu.tlb)
        cpu.tlbi_va(KERNEL_VA_BASE)
        assert len(cpu.mmu.tlb) == entries - 1
