"""Unit tests for the MMU: walks, TLB behaviour, permissions, stage 2."""

import pytest

from repro.config import PAGE_BYTES
from repro.errors import PermissionFault, Stage2Fault, TranslationFault
from repro.arch.cpu import CPUCore
from repro.arch.pagetable import KERNEL_VA_BASE
from repro.arch.registers import HCR_VM, SCTLR_M
from tests.helpers import TableBuilder, small_platform

BASE = 0x8000_0000


@pytest.fixture
def platform():
    return small_platform()


@pytest.fixture
def cpu(platform):
    return CPUCore(platform)


def enable_mmu(cpu, root, which="TTBR1_EL1"):
    cpu.regs.write(which, root)
    cpu.regs.set_bits("SCTLR_EL1", SCTLR_M)


class TestFlatModes:
    def test_mmu_off_is_identity(self, cpu):
        result = cpu.mmu.translate(BASE + 0x123_0008)
        assert result.paddr == BASE + 0x123_0008

    def test_el2_is_identity_linear_map(self, cpu):
        """Paper 6.1: the EL2 page table employs linear mapping."""
        result = cpu.mmu.translate(BASE + 0x8, el=2)
        assert result.paddr == BASE + 0x8
        assert result.writable and result.cacheable


class TestStage1Walks:
    def test_page_mapping(self, platform, cpu):
        builder = TableBuilder(platform, BASE + 0x10_0000)
        vaddr = KERNEL_VA_BASE + 0x20_0000
        builder.map_page(vaddr, BASE + 0x5000)
        enable_mmu(cpu, builder.root)
        result = cpu.mmu.translate(vaddr + 0x18)
        assert result.paddr == BASE + 0x5018
        assert result.level == 3

    def test_block_mapping(self, platform, cpu):
        builder = TableBuilder(platform, BASE + 0x10_0000)
        vaddr = KERNEL_VA_BASE + 0x40_0000
        builder.map_block(vaddr, BASE + 0x20_0000)
        enable_mmu(cpu, builder.root)
        # An address deep inside the 2 MB block translates with offset.
        result = cpu.mmu.translate(vaddr + 0x12_3458)
        assert result.paddr == BASE + 0x20_0000 + 0x12_3458
        assert result.level == 2

    def test_unmapped_va_faults(self, platform, cpu):
        builder = TableBuilder(platform, BASE + 0x10_0000)
        enable_mmu(cpu, builder.root)
        with pytest.raises(TranslationFault):
            cpu.mmu.translate(KERNEL_VA_BASE + 0x7000)

    def test_user_and_kernel_roots_are_separate(self, platform, cpu):
        kbuilder = TableBuilder(platform, BASE + 0x10_0000)
        ubuilder = TableBuilder(platform, BASE + 0x20_0000)
        kbuilder.map_page(KERNEL_VA_BASE, BASE + 0x1000)
        ubuilder.map_page(0x40_0000, BASE + 0x2000, user=True)
        enable_mmu(cpu, kbuilder.root, "TTBR1_EL1")
        cpu.regs.write("TTBR0_EL1", ubuilder.root)
        assert cpu.mmu.translate(KERNEL_VA_BASE).paddr == BASE + 0x1000
        assert cpu.mmu.translate(0x40_0000, el=0).paddr == BASE + 0x2000

    def test_walk_costs_three_descriptor_fetches(self, platform, cpu):
        builder = TableBuilder(platform, BASE + 0x10_0000)
        vaddr = KERNEL_VA_BASE + 0x20_0000
        builder.map_page(vaddr, BASE + 0x5000)
        enable_mmu(cpu, builder.root)
        cpu.mmu.translate(vaddr)
        assert cpu.mmu.stats.get("stage1_desc_fetches") == 3
        assert cpu.mmu.stats.get("stage1_walks") == 1


class TestTlb:
    def test_second_translation_hits_tlb(self, platform, cpu):
        builder = TableBuilder(platform, BASE + 0x10_0000)
        vaddr = KERNEL_VA_BASE + 0x20_0000
        builder.map_page(vaddr, BASE + 0x5000)
        enable_mmu(cpu, builder.root)
        cpu.mmu.translate(vaddr)
        cpu.mmu.translate(vaddr + 8)
        assert cpu.mmu.stats.get("stage1_walks") == 1
        assert cpu.mmu.tlb.stats.get("hits") == 1

    def test_invalidate_va_forces_rewalk(self, platform, cpu):
        builder = TableBuilder(platform, BASE + 0x10_0000)
        vaddr = KERNEL_VA_BASE + 0x20_0000
        builder.map_page(vaddr, BASE + 0x5000)
        enable_mmu(cpu, builder.root)
        cpu.mmu.translate(vaddr)
        cpu.mmu.invalidate_va(vaddr)
        cpu.mmu.translate(vaddr)
        assert cpu.mmu.stats.get("stage1_walks") == 2

    def test_stale_tlb_survives_pte_change_until_invalidate(self, platform, cpu):
        """The TLB really caches: a PTE edit alone does not retranslate."""
        builder = TableBuilder(platform, BASE + 0x10_0000)
        vaddr = KERNEL_VA_BASE + 0x20_0000
        builder.map_page(vaddr, BASE + 0x5000)
        enable_mmu(cpu, builder.root)
        assert cpu.mmu.translate(vaddr).paddr == BASE + 0x5000
        builder.map_page(vaddr, BASE + 0x6000)
        assert cpu.mmu.translate(vaddr).paddr == BASE + 0x5000  # stale
        cpu.mmu.invalidate_all()
        assert cpu.mmu.translate(vaddr).paddr == BASE + 0x6000

    def test_capacity_eviction(self, platform):
        cpu = CPUCore(platform)
        cpu.mmu.tlb.capacity = 4
        builder = TableBuilder(platform, BASE + 0x10_0000)
        for i in range(6):
            builder.map_page(KERNEL_VA_BASE + i * PAGE_BYTES, BASE + 0x5000)
        enable_mmu(cpu, builder.root)
        for i in range(6):
            cpu.mmu.translate(KERNEL_VA_BASE + i * PAGE_BYTES)
        assert len(cpu.mmu.tlb) == 4
        assert cpu.mmu.tlb.stats.get("evictions") == 2

    def test_asid_tagging_keeps_both_mappings(self, platform, cpu):
        b1 = TableBuilder(platform, BASE + 0x10_0000)
        b2 = TableBuilder(platform, BASE + 0x20_0000)
        b1.map_page(0x40_0000, BASE + 0x1000, user=True)
        b2.map_page(0x40_0000, BASE + 0x2000, user=True)
        cpu.regs.set_bits("SCTLR_EL1", SCTLR_M)
        cpu.regs.write("TTBR0_EL1", b1.root)
        cpu.mmu.asid = 1
        assert cpu.mmu.translate(0x40_0000, el=0).paddr == BASE + 0x1000
        cpu.regs.write("TTBR0_EL1", b2.root)
        cpu.mmu.asid = 2
        assert cpu.mmu.translate(0x40_0000, el=0).paddr == BASE + 0x2000
        # Switching back does not need a new walk: entries are ASID-tagged.
        cpu.regs.write("TTBR0_EL1", b1.root)
        cpu.mmu.asid = 1
        walks = cpu.mmu.stats.get("stage1_walks")
        assert cpu.mmu.translate(0x40_0000, el=0).paddr == BASE + 0x1000
        assert cpu.mmu.stats.get("stage1_walks") == walks

    def test_invalidate_asid_is_selective(self, platform, cpu):
        """invalidate_matching drops exactly the predicate's entries."""
        b1 = TableBuilder(platform, BASE + 0x10_0000)
        b2 = TableBuilder(platform, BASE + 0x20_0000)
        npages = 5
        for i in range(npages):
            b1.map_page(0x40_0000 + i * PAGE_BYTES, BASE + 0x1000, user=True)
            b2.map_page(0x40_0000 + i * PAGE_BYTES, BASE + 0x2000, user=True)
        cpu.regs.set_bits("SCTLR_EL1", SCTLR_M)
        for asid, builder in ((1, b1), (2, b2)):
            cpu.regs.write("TTBR0_EL1", builder.root)
            cpu.mmu.asid = asid
            for i in range(npages):
                cpu.mmu.translate(0x40_0000 + i * PAGE_BYTES, el=0)
        assert len(cpu.mmu.tlb) == 2 * npages
        # Dropping ASID 1 removes exactly its entries and reports the count.
        dropped = cpu.mmu.tlb.invalidate_matching(lambda key: key[1] == 1)
        assert dropped == npages
        assert len(cpu.mmu.tlb) == npages
        # ASID 2 is untouched: translating again needs no new walks ...
        walks = cpu.mmu.stats.get("stage1_walks")
        cpu.regs.write("TTBR0_EL1", b2.root)
        cpu.mmu.asid = 2
        for i in range(npages):
            cpu.mmu.translate(0x40_0000 + i * PAGE_BYTES, el=0)
        assert cpu.mmu.stats.get("stage1_walks") == walks
        # ... while ASID 1 must re-walk each page.
        cpu.regs.write("TTBR0_EL1", b1.root)
        cpu.mmu.asid = 1
        for i in range(npages):
            cpu.mmu.translate(0x40_0000 + i * PAGE_BYTES, el=0)
        assert cpu.mmu.stats.get("stage1_walks") == walks + npages
        # Invalidating an ASID with no entries is a clean no-op.
        assert cpu.mmu.tlb.invalidate_matching(lambda key: key[1] == 99) == 0

    def test_repeated_same_page_hits_count_like_tlb_hits(self, platform, cpu):
        """The one-entry fast path must account hits exactly like the
        dict probe it shortcuts."""
        builder = TableBuilder(platform, BASE + 0x10_0000)
        vaddr = KERNEL_VA_BASE + 0x20_0000
        builder.map_page(vaddr, BASE + 0x5000)
        enable_mmu(cpu, builder.root)
        for i in range(10):
            cpu.mmu.translate(vaddr + i * 8)
        assert cpu.mmu.stats.get("stage1_walks") == 1
        assert cpu.mmu.tlb.stats.get("hits") == 9
        assert cpu.mmu.tlb.stats.get("misses") == 1
        # An invalidate drops the fast-path entry too.
        cpu.mmu.invalidate_all()
        cpu.mmu.translate(vaddr)
        assert cpu.mmu.stats.get("stage1_walks") == 2


class TestPermissions:
    @pytest.fixture
    def mapped(self, platform, cpu):
        builder = TableBuilder(platform, BASE + 0x10_0000)
        builder.map_page(KERNEL_VA_BASE, BASE + 0x1000, writable=False)
        builder.map_page(
            KERNEL_VA_BASE + PAGE_BYTES, BASE + 0x2000, writable=True
        )
        builder.map_page(0x40_0000, BASE + 0x3000, user=True)
        enable_mmu(cpu, builder.root)
        cpu.regs.write("TTBR0_EL1", builder.root)
        return cpu

    def test_write_to_readonly_faults(self, mapped):
        with pytest.raises(PermissionFault):
            mapped.mmu.translate(KERNEL_VA_BASE, is_write=True)

    def test_read_of_readonly_allowed(self, mapped):
        assert mapped.mmu.translate(KERNEL_VA_BASE).paddr == BASE + 0x1000

    def test_el0_blocked_from_kernel_page(self, mapped):
        with pytest.raises(PermissionFault):
            mapped.mmu.translate(KERNEL_VA_BASE + PAGE_BYTES, el=0)

    def test_el0_allowed_on_user_page(self, mapped):
        assert mapped.mmu.translate(0x40_0000, el=0).paddr == BASE + 0x3000

    def test_exec_from_xn_page_faults(self, mapped):
        with pytest.raises(PermissionFault):
            mapped.mmu.translate(KERNEL_VA_BASE, is_exec=True)


class TestStage2:
    def _nested_cpu(self, platform):
        """Guest stage-1 maps VA->IPA; stage-2 maps IPA->PA (+16 MB)."""
        cpu = CPUCore(platform)
        s1 = TableBuilder(platform, BASE + 0x10_0000)
        s2 = TableBuilder(platform, BASE + 0x20_0000)
        guest_va = KERNEL_VA_BASE + 0x30_0000
        ipa = BASE + 0x100_0000
        pa = ipa + 0x100_0000
        s1.map_page(guest_va, ipa)
        # Stage 2 must also map the stage-1 tables themselves (identity).
        for table_off in range(0, 0x10_000, PAGE_BYTES):
            s2.map_page(BASE + 0x10_0000 + table_off, BASE + 0x10_0000 + table_off)
        s2.map_page(ipa, pa)
        enable_mmu(cpu, s1.root)
        cpu.regs.write("VTTBR_EL2", s2.root)
        cpu.regs.set_bits("HCR_EL2", HCR_VM)
        return cpu, guest_va, pa

    def test_nested_translation(self, platform):
        cpu, guest_va, pa = self._nested_cpu(platform)
        assert cpu.mmu.translate(guest_va + 0x20).paddr == pa + 0x20

    def test_nested_cold_walk_fetches_many_descriptors(self, platform):
        cpu, guest_va, _ = self._nested_cpu(platform)
        cpu.mmu.translate(guest_va)
        s1 = cpu.mmu.stats.get("stage1_desc_fetches")
        s2 = cpu.mmu.stats.get("stage2_desc_fetches")
        assert s1 == 3
        # Each stage-1 fetch triggers a stage-2 walk (3 descriptors) for
        # the table IPA, plus one walk for the final output IPA — but the
        # stage-2 TLB absorbs repeats of the same table page.
        assert s2 >= 6
        assert s1 + s2 > 8  # well above the 3 of a single-stage walk

    def test_stage2_unmapped_ipa_faults(self, platform):
        cpu = CPUCore(platform)
        s1 = TableBuilder(platform, BASE + 0x10_0000)
        s2 = TableBuilder(platform, BASE + 0x20_0000)
        guest_va = KERNEL_VA_BASE + 0x30_0000
        s1.map_page(guest_va, BASE + 0x100_0000)
        for table_off in range(0, 0x10_000, PAGE_BYTES):
            s2.map_page(BASE + 0x10_0000 + table_off, BASE + 0x10_0000 + table_off)
        # Note: no stage-2 mapping for the output IPA.
        cpu.regs.write("TTBR1_EL1", s1.root)
        cpu.regs.set_bits("SCTLR_EL1", SCTLR_M)
        cpu.regs.write("VTTBR_EL2", s2.root)
        cpu.regs.set_bits("HCR_EL2", HCR_VM)
        with pytest.raises(Stage2Fault):
            cpu.mmu.translate(guest_va)

    def test_stage2_write_protection(self, platform):
        cpu = CPUCore(platform)
        s1 = TableBuilder(platform, BASE + 0x10_0000)
        s2 = TableBuilder(platform, BASE + 0x20_0000)
        guest_va = KERNEL_VA_BASE + 0x30_0000
        ipa = BASE + 0x100_0000
        s1.map_page(guest_va, ipa)
        for table_off in range(0, 0x10_000, PAGE_BYTES):
            s2.map_page(BASE + 0x10_0000 + table_off, BASE + 0x10_0000 + table_off)
        s2.map_page(ipa, ipa, writable=False)
        cpu.regs.write("TTBR1_EL1", s1.root)
        cpu.regs.set_bits("SCTLR_EL1", SCTLR_M)
        cpu.regs.write("VTTBR_EL2", s2.root)
        cpu.regs.set_bits("HCR_EL2", HCR_VM)
        assert cpu.mmu.translate(guest_va).paddr == ipa  # reads fine
        with pytest.raises(Stage2Fault):
            cpu.mmu.translate(guest_va, is_write=True)

    def test_stage2_disabled_is_passthrough(self, cpu):
        assert cpu.mmu.stage2_translate(BASE + 0x42 * 8, is_write=True) == BASE + 0x42 * 8
