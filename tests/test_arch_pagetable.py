"""Unit tests for descriptor encoding and address-space layout."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import PAGE_BYTES, SECTION_BYTES
from repro.errors import SimulationError
from repro.arch.pagetable import (
    Descriptor,
    KERNEL_VA_BASE,
    USER_VA_LIMIT,
    index_for_level,
    invalid_desc,
    make_block_desc,
    make_page_desc,
    make_table_desc,
    split_vaddr,
)


class TestDescriptorEncoding:
    def test_invalid_desc_is_invalid(self):
        assert not Descriptor(invalid_desc()).valid

    def test_table_desc(self):
        desc = Descriptor(make_table_desc(0x8010_0000))
        assert desc.valid
        assert desc.is_table
        assert desc.address == 0x8010_0000

    def test_page_desc_defaults(self):
        desc = Descriptor(make_page_desc(0x8020_0000))
        assert desc.valid
        assert desc.writable
        assert desc.cacheable
        assert not desc.executable  # XN by default
        assert not desc.user
        assert not desc.cow

    def test_page_desc_attributes(self):
        raw = make_page_desc(
            0x8020_0000,
            writable=False,
            executable=True,
            cacheable=False,
            user=True,
            cow=True,
        )
        desc = Descriptor(raw)
        assert not desc.writable
        assert desc.executable
        assert not desc.cacheable
        assert desc.user
        assert desc.cow

    def test_block_desc_is_not_table(self):
        desc = Descriptor(make_block_desc(0x8020_0000 & ~(SECTION_BYTES - 1)))
        assert desc.valid
        assert not desc.is_table

    def test_misaligned_page_rejected(self):
        with pytest.raises(SimulationError):
            make_page_desc(0x8020_0100)

    def test_misaligned_block_rejected(self):
        with pytest.raises(SimulationError):
            make_block_desc(0x8000_0000 + PAGE_BYTES)

    def test_address_beyond_48_bits_rejected(self):
        with pytest.raises(SimulationError):
            make_table_desc(1 << 48)

    @given(st.integers(0, (1 << 36) - 1))
    def test_page_address_roundtrip(self, frame):
        paddr = frame * PAGE_BYTES
        assert Descriptor(make_page_desc(paddr)).address == paddr


class TestAddressSpaceSplit:
    def test_user_va(self):
        space, offset = split_vaddr(0x40_0000)
        assert space == "user"
        assert offset == 0x40_0000

    def test_kernel_va(self):
        space, offset = split_vaddr(KERNEL_VA_BASE + 0x1000)
        assert space == "kernel"
        assert offset == 0x1000

    def test_hole_rejected(self):
        with pytest.raises(SimulationError):
            split_vaddr(USER_VA_LIMIT)
        with pytest.raises(SimulationError):
            split_vaddr(KERNEL_VA_BASE - 8)

    def test_boundaries(self):
        assert split_vaddr(USER_VA_LIMIT - 8)[0] == "user"
        assert split_vaddr(KERNEL_VA_BASE)[0] == "kernel"


class TestIndexing:
    def test_level_indexes_of_zero(self):
        for level in (1, 2, 3):
            assert index_for_level(0, level) == 0

    def test_level3_counts_pages(self):
        assert index_for_level(5 * PAGE_BYTES, 3) == 5

    def test_level2_counts_sections(self):
        assert index_for_level(3 * SECTION_BYTES, 2) == 3

    def test_level1_counts_gigabytes(self):
        assert index_for_level(2 << 30, 1) == 2

    def test_indexes_wrap_at_512(self):
        assert index_for_level(512 * PAGE_BYTES, 3) == 0
        assert index_for_level(512 * PAGE_BYTES, 2) == 1

    @given(st.integers(0, (1 << 39) - 1))
    def test_indexes_reconstruct_aligned_offset(self, offset):
        reconstructed = (
            (index_for_level(offset, 1) << 30)
            | (index_for_level(offset, 2) << 21)
            | (index_for_level(offset, 3) << 12)
        )
        assert reconstructed == offset & ~(PAGE_BYTES - 1)
