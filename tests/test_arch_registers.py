"""Unit tests for the system-register file."""

import pytest

from repro.arch.registers import (
    HCR_TVM,
    HCR_VM,
    SCTLR_M,
    SystemRegisters,
    VM_CONTROL_REGISTERS,
)


@pytest.fixture
def regs():
    return SystemRegisters()


class TestBasicAccess:
    def test_reset_values_are_zero(self, regs):
        assert regs.read("TTBR1_EL1") == 0
        assert regs.read("HCR_EL2") == 0

    def test_write_read_roundtrip(self, regs):
        regs.write("TTBR0_EL1", 0x8010_0000)
        assert regs.read("TTBR0_EL1") == 0x8010_0000

    def test_unknown_register_rejected(self, regs):
        with pytest.raises(KeyError):
            regs.read("XYZZY_EL9")
        with pytest.raises(KeyError):
            regs.write("XYZZY_EL9", 0)

    def test_values_truncate_to_64_bits(self, regs):
        regs.write("SP_EL2", 1 << 70 | 3)
        assert regs.read("SP_EL2") == 3


class TestBitHelpers:
    def test_set_and_clear_bits(self, regs):
        regs.set_bits("HCR_EL2", HCR_TVM | HCR_VM)
        assert regs.test_bits("HCR_EL2", HCR_TVM)
        regs.clear_bits("HCR_EL2", HCR_VM)
        assert not regs.test_bits("HCR_EL2", HCR_VM)
        assert regs.test_bits("HCR_EL2", HCR_TVM)


class TestPredicates:
    def test_stage2_enabled_tracks_hcr_vm(self, regs):
        assert not regs.stage2_enabled
        regs.set_bits("HCR_EL2", HCR_VM)
        assert regs.stage2_enabled

    def test_tvm_enabled_tracks_hcr_tvm(self, regs):
        assert not regs.tvm_enabled
        regs.set_bits("HCR_EL2", HCR_TVM)
        assert regs.tvm_enabled

    def test_mmu_enabled_tracks_sctlr_m(self, regs):
        assert not regs.mmu_enabled
        regs.set_bits("SCTLR_EL1", SCTLR_M)
        assert regs.mmu_enabled


class TestTrapSet:
    def test_vm_control_registers_cover_the_paper_set(self):
        """Paper 5.2.2/6.1: TTBRs and MMU config must be trappable."""
        for name in ("TTBR0_EL1", "TTBR1_EL1", "SCTLR_EL1", "TCR_EL1"):
            assert name in VM_CONTROL_REGISTERS

    def test_el2_registers_not_in_trap_set(self):
        assert "HCR_EL2" not in VM_CONTROL_REGISTERS
