"""Unit tests for the attack framework itself (outcomes, helpers)."""

import pytest

from repro.attacks.base import AttackOutcome, alert_count
from repro.attacks.rootkit import CredEscalationAttack, DentryHijackAttack
from repro.attacks.atra import AtraAttack
from repro.core.hypernel import build_hypernel, build_native
from repro.kernel.kernel import KernelConfig
from repro.security import CredIntegrityMonitor
from tests.conftest import small_platform_config


class TestAttackOutcome:
    def test_note_accumulates(self):
        outcome = AttackOutcome("x", False, False, False)
        outcome.note("first")
        outcome.note("second")
        assert outcome.notes == ["first", "second"]

    def test_fields(self):
        outcome = AttackOutcome("x", True, False, True)
        assert outcome.succeeded and outcome.detected and not outcome.blocked


class TestAlertCounting:
    def test_counts_hypersec_and_app_alerts(self):
        system = build_hypernel(
            platform_config=small_platform_config(),
            monitors=[CredIntegrityMonitor()],
        )
        init = system.spawn_init()
        assert alert_count(system) == 0
        # An app alert:
        from repro.kernel.objects import CRED
        kernel = system.kernel
        kernel.sys.setuid(init, 1000)
        kernel.cpu.write(
            kernel.linear_map.kva(init.cred_pa + CRED.field("uid").byte_offset), 0
        )
        after_app = alert_count(system)
        assert after_app >= 1
        # A Hypersec alert:
        from repro.core.hypercalls import HVC_PGTABLE_WRITE
        kernel.cpu.hvc(HVC_PGTABLE_WRITE, 0x12345000, 0, 3)
        assert alert_count(system) > after_app

    def test_native_system_counts_zero(self):
        system = build_native(platform_config=small_platform_config())
        system.spawn_init()
        assert alert_count(system) == 0


class TestAttackPreconditions:
    def test_dentry_hijack_requires_existing_path(self):
        system = build_native(platform_config=small_platform_config())
        system.spawn_init()
        with pytest.raises(ValueError):
            DentryHijackAttack().mount(system, "/does/not/exist")

    def test_atra_reports_section_map_limitation(self):
        """On the vanilla 2 MB-section map, ATRA needs a different
        technique (section splitting); the scenario says so instead of
        pretending."""
        system = build_native(platform_config=small_platform_config())
        victim = system.spawn_init()
        outcome = AtraAttack().mount(system, victim)
        assert not outcome.succeeded
        assert any("section" in note for note in outcome.notes)

    def test_cred_escalation_reports_notes(self):
        system = build_native(
            platform_config=small_platform_config(),
            kernel_config=KernelConfig(linear_map_mode="page"),
        )
        victim = system.spawn_init()
        outcome = CredEscalationAttack().mount(system, victim)
        assert outcome.notes
        assert "zeroed" in outcome.notes[0]


class TestRepeatability:
    def test_attacks_can_be_mounted_repeatedly(self):
        system = build_hypernel(
            platform_config=small_platform_config(),
            monitors=[CredIntegrityMonitor()],
        )
        init = system.spawn_init()
        system.kernel.sys.setuid(init, 1000)
        first = CredEscalationAttack().mount(system, init)
        second = CredEscalationAttack().mount(system, init)
        assert first.detected
        # The second identical attack is a re-observation: succeeded,
        # but already-known hostile values raise no duplicate alert.
        assert second.succeeded
