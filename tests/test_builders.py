"""Tests for the system builders (the three evaluation configurations)."""

import pytest

from repro.core.hypernel import build_system
from tests.conftest import small_platform_config


class TestNativeBuilder:
    def test_shape(self, native_system):
        assert native_system.name == "native"
        assert native_system.hypersec is None
        assert native_system.kvm is None
        assert native_system.mbm is None
        assert native_system.kernel.booted

    def test_vanilla_section_linear_map(self, native_system):
        assert native_system.kernel.linear_map.mode == "section"

    def test_no_el2_traps(self, native_system):
        assert not native_system.cpu.regs.tvm_enabled
        assert not native_system.cpu.regs.stage2_enabled


class TestKvmBuilder:
    def test_shape(self, kvm_system):
        assert kvm_system.kvm is not None
        assert kvm_system.hypersec is None
        assert kvm_system.cpu.regs.stage2_enabled
        assert kvm_system.kernel.env.name == "kvm-guest"

    def test_guest_kernel_is_unmodified(self, kvm_system):
        from repro.kernel.pgtable_mgmt import DirectPgTableWriter
        assert isinstance(kvm_system.kernel.pgwriter, DirectPgTableWriter)
        assert kvm_system.kernel.linear_map.mode == "section"


class TestHypernelBuilder:
    def test_shape_with_mbm(self, monitored_system):
        assert monitored_system.hypersec is not None
        assert monitored_system.mbm is not None
        assert monitored_system.hooks is not None
        assert len(monitored_system.monitors) == 2

    def test_shape_without_mbm(self, hypernel_system):
        assert hypernel_system.mbm is None
        assert hypernel_system.hooks is None
        assert hypernel_system.cpu.regs.tvm_enabled

    def test_patched_kernel(self, hypernel_system):
        from repro.kernel.pgtable_mgmt import HypercallPgTableWriter
        assert isinstance(hypernel_system.kernel.pgwriter, HypercallPgTableWriter)
        assert hypernel_system.kernel.linear_map.mode == "page"

    def test_monitor_lookup(self, monitored_system):
        assert monitored_system.monitor_by_name("cred_monitor").sid is not None
        with pytest.raises(KeyError):
            monitored_system.monitor_by_name("nonexistent")


class TestBuildSystem:
    @pytest.mark.parametrize("name", ["native", "kvm-guest", "hypernel"])
    def test_by_name(self, name):
        system = build_system(name, platform_config=small_platform_config())
        assert system.name == name
        init = system.spawn_init()
        assert init.pid == 1

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_system("xen")

    def test_stats_summary_keys(self, monitored_system):
        summary = monitored_system.stats_summary()
        assert "cycles" in summary
        assert "hypercalls" in summary
        assert "mbm_events" in summary
