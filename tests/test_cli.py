"""Tests for the command-line interface."""

import pytest

from repro.cli import main

PLATFORM = ["--dram-mb", "64"]
SCALED = [*PLATFORM, "--scale", "0.02"]


class TestCli:
    def test_info(self, capsys):
        assert main(["info", *PLATFORM]) == 0
        out = capsys.readouterr().out
        assert "hypernel" in out
        assert "stage2" in out

    def test_table2(self, capsys):
        assert main(["table2", *SCALED, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "word-granularity" in out
        assert "overall word/page ratio" in out

    def test_table2_parallel_jobs(self, capsys):
        assert main(["table2", *SCALED, "--no-cache", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "overall word/page ratio" in out

    def test_table2_cache_round_trip(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["table2", *SCALED]) == 0
        cold = capsys.readouterr().out
        assert list(tmp_path.glob("*.json")), "cold run must populate the cache"
        assert main(["table2", *SCALED]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_attacks(self, capsys):
        assert main(["attacks", *PLATFORM]) == 0
        out = capsys.readouterr().out
        assert "SILENT SUCCESS" in out   # native section
        assert "BLOCKED" in out          # hypernel section

    def test_audit(self, capsys):
        assert main(["audit", *SCALED]) == 0
        out = capsys.readouterr().out
        assert "audit clean" in out

    def test_table1_rejects_scale(self, capsys):
        # table1 runs fixed LMbench op counts; it must not silently
        # accept (and drop) a workload scale factor.
        with pytest.raises(SystemExit):
            main(["table1", *PLATFORM, "--scale", "0.02"])
        assert "--scale" in capsys.readouterr().err

    def test_table1_advertises_runner_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--jobs" in out
        assert "--no-cache" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
