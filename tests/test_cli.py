"""Tests for the command-line interface."""

import pytest

from repro.cli import main

PLATFORM = ["--dram-mb", "64"]
SCALED = [*PLATFORM, "--scale", "0.02"]


class TestCli:
    def test_info(self, capsys):
        assert main(["info", *PLATFORM]) == 0
        out = capsys.readouterr().out
        assert "hypernel" in out
        assert "stage2" in out

    def test_table2(self, capsys):
        assert main(["table2", *SCALED, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "word-granularity" in out
        assert "overall word/page ratio" in out

    def test_table2_parallel_jobs(self, capsys):
        assert main(["table2", *SCALED, "--no-cache", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "overall word/page ratio" in out

    def test_table2_cache_round_trip(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["table2", *SCALED]) == 0
        cold = capsys.readouterr().out
        assert list(tmp_path.glob("*.json")), "cold run must populate the cache"
        assert main(["table2", *SCALED]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_attacks(self, capsys):
        assert main(["attacks", *PLATFORM]) == 0
        out = capsys.readouterr().out
        assert "SILENT SUCCESS" in out   # native section
        assert "BLOCKED" in out          # hypernel section

    def test_audit(self, capsys):
        assert main(["audit", *SCALED]) == 0
        out = capsys.readouterr().out
        assert "audit clean" in out

    def test_table1_rejects_scale(self, capsys):
        # table1 runs fixed LMbench op counts; it must not silently
        # accept (and drop) a workload scale factor.
        with pytest.raises(SystemExit):
            main(["table1", *PLATFORM, "--scale", "0.02"])
        assert "--scale" in capsys.readouterr().err

    def test_table1_advertises_runner_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--jobs" in out
        assert "--no-cache" in out

    def test_table1_advertises_backend_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--backend" in out
        assert "forkserver" in out

    def test_table2_explicit_serial_backend(self, capsys):
        assert main(["table2", *SCALED, "--no-cache",
                     "--backend", "serial"]) == 0
        assert "overall word/page ratio" in capsys.readouterr().out

    def test_backend_rejects_unknown_choice(self, capsys):
        with pytest.raises(SystemExit):
            main(["table2", *SCALED, "--backend", "warpdrive"])
        assert "--backend" in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCacheCommand:
    def _seed(self, tmp_path):
        import os

        (tmp_path / "aaaa.json").write_bytes(b"r" * 64)
        (tmp_path / "snapshots").mkdir()
        (tmp_path / "snapshots" / "img.snap").write_bytes(b"s" * 256)
        stale = tmp_path / "bbbb.json"
        stale.write_bytes(b"r" * 64)
        ancient = 1_000_000_000.0  # 2001: older than any --max-age
        os.utime(stale, (ancient, ancient))

    def test_cache_info_summarizes_kinds(self, capsys, tmp_path):
        self._seed(tmp_path)
        assert main(["cache", "info", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "result entries: 2 (128 bytes)" in out
        assert "boot snapshots: 1 (256 bytes)" in out
        assert "total: 3 files, 384 bytes" in out

    def test_cache_info_verbose_lists_entries(self, capsys, tmp_path):
        self._seed(tmp_path)
        assert main(["cache", "info", "--dir", str(tmp_path),
                     "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "img.snap" in out
        assert "aaaa.json" in out

    def test_cache_info_empty_directory(self, capsys, tmp_path):
        assert main(["cache", "info", "--dir",
                     str(tmp_path / "missing")]) == 0
        assert "total: 0 files, 0 bytes" in capsys.readouterr().out

    def test_cache_prune_by_age(self, capsys, tmp_path):
        self._seed(tmp_path)
        assert main(["cache", "prune", "--dir", str(tmp_path),
                     "--max-age", "365"]) == 0
        out = capsys.readouterr().out
        assert "bbbb.json" in out
        assert "pruned 1 entries; 2 remain" in out
        assert not (tmp_path / "bbbb.json").exists()
        assert (tmp_path / "aaaa.json").exists()

    def test_cache_prune_by_bytes(self, capsys, tmp_path):
        self._seed(tmp_path)
        # 384 bytes on disk, 300 allowed: the two oldest entries go.
        assert main(["cache", "prune", "--dir", str(tmp_path),
                     "--max-bytes", "300"]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out
        from repro.tools.runner import cache_contents

        assert cache_contents(tmp_path)["total_bytes"] <= 300

    def test_cache_requires_action(self):
        with pytest.raises(SystemExit):
            main(["cache"])
