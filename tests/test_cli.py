"""Tests for the command-line interface."""

import pytest

from repro.cli import main

FAST = ["--dram-mb", "64", "--scale", "0.02"]


class TestCli:
    def test_info(self, capsys):
        assert main(["info", *FAST]) == 0
        out = capsys.readouterr().out
        assert "hypernel" in out
        assert "stage2" in out

    def test_table2(self, capsys):
        assert main(["table2", *FAST]) == 0
        out = capsys.readouterr().out
        assert "word-granularity" in out
        assert "overall word/page ratio" in out

    def test_attacks(self, capsys):
        assert main(["attacks", *FAST]) == 0
        out = capsys.readouterr().out
        assert "SILENT SUCCESS" in out   # native section
        assert "BLOCKED" in out          # hypernel section

    def test_audit(self, capsys):
        assert main(["audit", *FAST]) == 0
        out = capsys.readouterr().out
        assert "audit clean" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
