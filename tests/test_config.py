"""Tests for platform configuration and cost-model plumbing."""

import pytest

from repro.config import (
    CostModel,
    PAGE_BYTES,
    PAGE_WORDS,
    PlatformConfig,
    SECTION_BYTES,
    WORD_BYTES,
    juno_r1,
    juno_r1_daughterboard,
)


class TestConstants:
    def test_word_page_relation(self):
        assert PAGE_WORDS * WORD_BYTES == PAGE_BYTES
        assert SECTION_BYTES % PAGE_BYTES == 0

    def test_bitmap_granularity_matches_paper(self):
        """Paper 5.3: one bit per word, one word is 8 bytes."""
        assert WORD_BYTES == 8


class TestPlatformConfig:
    def test_secure_region_sits_at_top_of_dram(self):
        config = PlatformConfig()
        assert config.secure_base + config.secure_bytes == config.dram_limit
        assert config.secure_base > config.dram_base

    def test_cycle_conversions_roundtrip(self):
        config = PlatformConfig()
        assert config.us_to_cycles(config.cycles_to_us(123456)) == 123456

    def test_cycles_to_us_at_rated_frequency(self):
        config = PlatformConfig(cpu_freq_hz=1e9)
        assert config.cycles_to_us(1000) == pytest.approx(1.0)

    def test_costs_are_per_instance(self):
        """Mutating one config's costs must not leak into another."""
        first = PlatformConfig()
        second = PlatformConfig()
        first.costs.hvc_entry = 999999
        assert second.costs.hvc_entry != 999999


class TestPresets:
    def test_juno_r1_matches_paper_performance_setup(self):
        config = juno_r1()
        assert config.dram_bytes == 2 * 1024 * 1024 * 1024  # 2 GB DRAM
        assert config.cpu_freq_hz == pytest.approx(1.15e9)  # A57 big core

    def test_daughterboard_matches_paper_monitoring_setup(self):
        config = juno_r1_daughterboard()
        assert config.dram_bytes == 128 * 1024 * 1024  # LogicTile SDRAM

    def test_presets_are_independent_instances(self):
        assert juno_r1() is not juno_r1()


class TestCostModel:
    def test_memory_hierarchy_ordering(self):
        costs = CostModel()
        assert costs.l1_hit < costs.l2_hit < costs.dram_row_hit
        assert costs.dram_row_hit < costs.dram_row_miss

    def test_transition_cost_ordering(self):
        """Hypersec's lean hypercalls must undercut KVM world switches —
        the paper's efficiency argument in one inequality."""
        costs = CostModel()
        hvc_round_trip = costs.hvc_entry + costs.hvc_exit
        world_switch = costs.vm_exit + costs.vm_enter
        assert hvc_round_trip < world_switch / 10

    def test_syscall_cheaper_than_hypercall(self):
        costs = CostModel()
        assert costs.svc_entry + costs.svc_exit < costs.hvc_entry + costs.hvc_exit
