"""Tests for the Hypersec invariant auditor."""

import pytest

from repro.config import PAGE_BYTES
from repro.arch.pagetable import DESC_AP_WRITE, DESC_NC, make_page_desc
from repro.kernel.objects import CRED


@pytest.fixture
def system(monitored_system):
    monitored_system.spawn_init()
    return monitored_system


class TestCleanStates:
    def test_freshly_protected_system_is_clean(self, hypernel_system):
        hypernel_system.spawn_init()
        report = hypernel_system.hypersec.audit()
        assert report.clean, str(report)
        assert report.tables_walked > 0
        assert report.leaves_checked > 0

    def test_monitored_system_is_clean(self, system):
        report = system.hypersec.audit()
        assert report.clean, str(report)
        assert report.bitmap_words_checked > 0

    def test_clean_after_workload(self, system):
        kernel = system.kernel
        init = kernel.procs.current
        kernel.vfs.mkdir_p("/tmp")
        kernel.sys.creat(init, "/tmp/f")
        child = kernel.sys.fork(init)
        kernel.procs.context_switch(child)
        kernel.sys.execv(child)
        kernel.sys.exit(child)
        kernel.procs.context_switch(init)
        kernel.sys.wait(init)
        report = system.hypersec.audit()
        assert report.clean, str(report)

    def test_clean_after_blocked_attacks(self, system):
        from repro.attacks import (
            AtraAttack,
            MmuDisableAttack,
            PageTableTamperAttack,
            TtbrSwitchAttack,
        )
        init = system.kernel.procs.current
        PageTableTamperAttack().mount(system)
        TtbrSwitchAttack().mount(system)
        MmuDisableAttack().mount(system)
        AtraAttack().mount(system, init)
        report = system.hypersec.audit()
        assert report.clean, str(report)

    def test_report_string(self, system):
        report = system.hypersec.audit()
        assert "audit clean" in str(report)


class TestSeededViolations:
    """Each invariant must actually trip when its property is broken
    behind Hypersec's back (simulating an EL2 bug or a hardware glitch —
    exactly what a periodic audit exists to catch)."""

    def _poison(self, system, raw_mutator):
        """Apply a backdoor mutation and return the audit report."""
        raw_mutator()
        return system.hypersec.audit()

    def test_secure_mapping_detected(self, system):
        kernel = system.kernel
        mm = kernel.procs.current.mm
        l3 = next(pa for path, pa in mm.tables.items() if len(path) == 2)
        desc = make_page_desc(system.platform.secure_base, writable=True)
        report = self._poison(
            system, lambda: system.platform.bus.poke(l3 + 50 * 8, desc)
        )
        assert any(f.invariant == "NO_SECURE_MAPPING" for f in report.findings)

    def test_writable_table_alias_detected(self, system):
        kernel = system.kernel
        mm = kernel.procs.current.mm
        l3 = next(pa for path, pa in mm.tables.items() if len(path) == 2)
        table = next(iter(system.hypersec.table_pages))
        desc = make_page_desc(table, writable=True)
        report = self._poison(
            system, lambda: system.platform.bus.poke(l3 + 51 * 8, desc)
        )
        assert any(f.invariant == "NO_WRITABLE_TABLE_ALIAS"
                   for f in report.findings)

    def test_writable_table_leaf_detected(self, system):
        """A linear-map leaf for a table page flipped back to writable."""
        kernel = system.kernel
        table = next(iter(system.hypersec.table_pages))
        desc_addr, _ = kernel.linear_map.leaf_desc_addr(table)
        raw = system.platform.bus.peek(desc_addr)
        report = self._poison(
            system,
            lambda: system.platform.bus.poke(desc_addr, raw | DESC_AP_WRITE),
        )
        assert any(f.invariant in ("TABLES_READ_ONLY",
                                   "NO_WRITABLE_TABLE_ALIAS")
                   for f in report.findings)

    def test_w_xor_x_detected(self, system):
        kernel = system.kernel
        mm = kernel.procs.current.mm
        l3 = next(pa for path, pa in mm.tables.items() if len(path) == 2)
        frame = kernel.allocator.alloc("probe")
        desc = make_page_desc(frame, writable=True, executable=True, user=False)
        report = self._poison(
            system, lambda: system.platform.bus.poke(l3 + 52 * 8, desc)
        )
        assert any(f.invariant == "W_XOR_X" for f in report.findings)

    def test_recached_monitored_page_detected(self, system):
        kernel = system.kernel
        init = kernel.procs.current
        page = init.cred_pa & ~(PAGE_BYTES - 1)
        desc_addr, _ = kernel.linear_map.leaf_desc_addr(page)
        raw = system.platform.bus.peek(desc_addr)
        report = self._poison(
            system,
            lambda: system.platform.bus.poke(desc_addr, raw & ~DESC_NC),
        )
        assert any(f.invariant == "MONITORED_UNCACHED" for f in report.findings)

    def test_cleared_bitmap_bit_detected(self, system):
        kernel = system.kernel
        init = kernel.procs.current
        word_addr, bit = system.mbm.bitmap.locate(
            init.cred_pa + CRED.field("uid").byte_offset
        )
        raw = system.platform.bus.peek(word_addr)
        report = self._poison(
            system,
            lambda: system.platform.bus.poke(word_addr, raw & ~(1 << bit)),
        )
        assert any(f.invariant == "BITMAP_CONSISTENT" for f in report.findings)

    def test_stray_bitmap_bit_detected(self, system):
        word_addr = system.mbm.bitmap.bitmap_base + 0x2000
        report = self._poison(
            system, lambda: system.platform.bus.poke(word_addr, 0xFFFF)
        )
        assert any(f.invariant == "BITMAP_CONSISTENT" for f in report.findings)

    def test_rogue_ttbr_detected(self, system):
        rogue = system.kernel.allocator.alloc("attacker")
        report = self._poison(
            system, lambda: system.cpu.regs.write("TTBR0_EL1", rogue)
        )
        assert any(f.invariant == "TTBR_INTEGRITY" for f in report.findings)

    def test_findings_render(self, system):
        word_addr = system.mbm.bitmap.bitmap_base + 0x2000
        system.platform.bus.poke(word_addr, 0xFF)
        report = system.hypersec.audit()
        assert "violation" in str(report)

    def test_seeded_violation_survives_snapshot(self, system, tmp_path):
        """A poisoned machine image audited *after* a checkpoint/restore
        round trip must report the same violation — the forensic use
        case behind ``repro audit --snapshot``."""
        from repro.state import restore_system, save_snapshot

        word_addr = system.mbm.bitmap.bitmap_base + 0x2000
        system.platform.bus.poke(word_addr, 0xFFFF)
        path = tmp_path / "poisoned.snap"
        save_snapshot(system, path)
        restored = restore_system(path)
        report = restored.hypersec.audit()
        assert any(f.invariant == "BITMAP_CONSISTENT" for f in report.findings)

    def test_cli_audit_snapshot_exit_codes(self, system, tmp_path, capsys):
        from repro.cli import main
        from repro.state import save_snapshot

        clean = tmp_path / "clean.snap"
        save_snapshot(system, clean)
        assert main(["audit", "--snapshot", str(clean)]) == 0
        assert "audit clean" in capsys.readouterr().out

        system.platform.bus.poke(
            system.mbm.bitmap.bitmap_base + 0x2000, 0xFFFF
        )
        poisoned = tmp_path / "poisoned.snap"
        save_snapshot(system, poisoned)
        assert main(["audit", "--snapshot", str(poisoned)]) == 1
        assert "violation" in capsys.readouterr().out

    def test_auditor_survives_table_loops(self, system):
        """A malformed self-referential table must not hang the walk."""
        kernel = system.kernel
        mm = kernel.procs.current.mm
        l3 = next(pa for path, pa in mm.tables.items() if len(path) == 2)
        from repro.arch.pagetable import make_table_desc
        # Point an entry of the pgd back at the pgd itself.
        system.platform.bus.poke(mm.pgd + 300 * 8, make_table_desc(mm.pgd))
        report = system.hypersec.audit()  # must terminate
        assert report.tables_walked > 0
