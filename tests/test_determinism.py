"""Determinism regression guard for the simulation engine.

The hot-path optimisations (flat-memory backing, TLB/cache fast paths,
snooper short-circuits, batched counters) must not change a single
simulated event: running the same scenario twice — or before/after any
perf PR — must produce identical statistics, ring-buffer contents and
cycle counts.  ``scripts/check_simspeed.py`` enforces the cross-PR half
of this; these tests enforce the run-to-run half in tier 1.
"""

from repro.config import PlatformConfig
from repro.core.hypernel import build_hypernel, build_kvm_guest, build_native
from repro.kernel.objects import CRED
from repro.security import CredIntegrityMonitor
from repro.utils.stats import merge


def _platform_config():
    return PlatformConfig(
        dram_bytes=96 * 1024 * 1024, secure_bytes=16 * 1024 * 1024
    )


def _run_monitored_scenario():
    """Quickstart workload plus one monitored-write attack; returns every
    observable the engine produces."""
    system = build_hypernel(
        platform_config=_platform_config(), monitors=[CredIntegrityMonitor()]
    )
    kernel = system.kernel
    init = system.spawn_init()

    # Benign kernel activity (quickstart's workload).
    kernel.vfs.mkdir_p("/home/user")
    kernel.sys.creat(init, "/home/user/notes.txt")
    handle = kernel.sys.open(init, "/home/user/notes.txt")
    kernel.sys.write(init, handle, 4096)
    kernel.sys.close(init, handle)
    child = kernel.sys.fork(init)
    kernel.procs.context_switch(child)
    kernel.sys.exit(child)
    kernel.procs.context_switch(init)
    kernel.sys.wait(init)
    kernel.sys.setuid(init, 1000)

    # The attack: a direct kernel write to the monitored cred word.
    euid_kva = kernel.linear_map.kva(
        init.cred_pa + CRED.field("euid").byte_offset
    )
    kernel.cpu.write(euid_kva, 0)

    monitor = system.monitor_by_name("cred_monitor")
    ring_words = [
        system.platform.bus.peek(system.mbm.ring.base + offset * 8)
        for offset in range(2 + 2 * min(system.mbm.ring.entries, 32))
    ]
    platform = system.platform
    stats = merge(
        system.cpu.stats,
        system.cpu.mmu.stats,
        system.cpu.mmu.tlb.stats,
        system.cpu.mmu.stage2_tlb.stats,
        platform.bus.stats,
        platform.dram.stats,
        platform.l1.stats,
        platform.l2.stats,
        platform.caches.stats,
        system.mbm.stats,
        system.mbm.snooper.stats,
        system.mbm.translator.stats,
        system.mbm.decision.stats,
        system.mbm.ring.stats,
    )
    return {
        "cycles": platform.clock.now,
        "stats": stats,
        "summary": system.stats_summary(),
        "ring_words": ring_words,
        "alerts": [
            (alert.reason, alert.addr, alert.observed, alert.expected)
            for alert in monitor.alerts
        ],
        "events": monitor.event_count,
        "population": platform.memory.population(),
    }


class TestDeterminism:
    def test_monitored_scenario_is_bit_identical_across_runs(self):
        first = _run_monitored_scenario()
        second = _run_monitored_scenario()
        assert first["cycles"] == second["cycles"]
        assert first["stats"] == second["stats"]
        assert first["summary"] == second["summary"]
        assert first["ring_words"] == second["ring_words"]
        assert first["alerts"] == second["alerts"]
        assert first["events"] == second["events"]
        assert first["population"] == second["population"]
        # The scenario really exercised the machine and the monitor.
        assert first["events"] > 0
        assert first["alerts"]
        assert first["cycles"] > 0

    def test_all_three_configurations_are_deterministic(self):
        """Table 1's three systems produce stable cycle counts for the
        same micro-operation sequence."""
        from repro.workloads.lmbench import LmbenchSuite

        def run(builder):
            system = builder(platform_config=_platform_config())
            suite = LmbenchSuite(system, warmup=2, iterations=4)
            suite.setup()
            suite.run_op("fork+execv")
            suite.run_op("mmap")
            return system.platform.clock.now

        for builder in (build_native, build_kvm_guest, build_hypernel):
            assert run(builder) == run(builder)
