"""Smoke tests: every shipped example runs to a successful exit.

The examples are the library's public face; they must not rot.  Each is
run as a subprocess exactly as a user would run it (with small
workload arguments where supported, to keep the suite fast).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

#: example script -> extra CLI arguments for a fast run
EXAMPLES = {
    "quickstart.py": [],
    "rootkit_detection.py": [],
    "atra_attack.py": [],
    "bus_observability.py": [],
    "monitoring_efficiency.py": ["--scale", "0.05", "--dram-mb", "96"],
    "performance_comparison.py": ["--skip-apps", "--dram-mb", "96"],
}


@pytest.mark.parametrize("script,args", sorted(EXAMPLES.items()))
def test_example_runs_clean(script, args):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_every_example_is_listed():
    """A new example script must be added to the smoke-test table."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)
