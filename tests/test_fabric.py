"""Shard fabric: TCP transport, routing, stealing, requeue (ISSUE 9).

The contract (DESIGN.md §5h): a batch run across N shard daemons is
byte-identical to a serial ``run_cells`` of the same cell list; cells
route to shards by a stable hash of their environment key; idle shards
steal from the most-backlogged victim's tail; a shard dying mid-batch
gets its cells requeued onto survivors; cancellation propagates to
in-flight remote jobs without leaking children; and the v2 ``hello``
handshake refuses protocol mismatches instead of misinterpreting
frames.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.obs.service import FabricStats
from repro.service import fabric
from repro.service.client import ReproServiceClient
from repro.service.daemon import DaemonConfig, ReproDaemon
from repro.service.protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    ServiceError,
    connect_endpoint,
    hello_message,
    parse_endpoint,
    send_message,
)
from repro.tools.runner import Cell, run_cells

from tests.test_forkserver import live_children  # shared /proc helper
from tests.test_service import echo_cell, no_backend_env, sleep_cell  # noqa: F401


def start_daemon(tmp_path, name="d", **config_kwargs):
    """In-process daemon on a tmp socket; returns (daemon, thread)."""
    config = DaemonConfig(
        socket_path=str(tmp_path / f"{name}.sock"),
        jobs=config_kwargs.pop("jobs", 2),
        no_cache=config_kwargs.pop("no_cache", True),
        **config_kwargs,
    )
    daemon = ReproDaemon(config)
    ready = threading.Event()
    thread = threading.Thread(target=daemon.serve, args=(ready,),
                              daemon=True)
    thread.start()
    assert ready.wait(10), f"daemon {name} never came up"
    return daemon, thread


def stop_daemon(daemon, thread):
    daemon.request_shutdown()
    thread.join(timeout=30)
    assert not thread.is_alive(), "daemon failed to drain"


@pytest.fixture
def two_shards(tmp_path, no_backend_env):
    """Two in-process daemons; yields their unix endpoints."""
    pairs = [start_daemon(tmp_path, f"shard{i}", shard_id=f"s{i}")
             for i in range(2)]
    yield [daemon.config.resolved_socket_path() for daemon, _ in pairs]
    for daemon, thread in pairs:
        stop_daemon(daemon, thread)


# ----------------------------------------------------------------------
# Endpoints and the TCP transport
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_parse_unix_path(self):
        assert parse_endpoint("/tmp/x.sock") == ("unix", "/tmp/x.sock")

    def test_parse_tcp_with_host(self):
        assert parse_endpoint("tcp://10.0.0.7:9000") == (
            "tcp", ("10.0.0.7", 9000))

    def test_tcp_without_host_means_loopback(self):
        assert parse_endpoint("tcp://:9000") == ("tcp", ("127.0.0.1", 9000))
        assert parse_endpoint("tcp://9000") == ("tcp", ("127.0.0.1", 9000))

    def test_bad_tcp_port_is_rejected(self):
        with pytest.raises(ServiceError, match="bad TCP endpoint"):
            parse_endpoint("tcp://host:nope")

    def test_daemon_serves_byte_identical_results_over_tcp(
        self, tmp_path, no_backend_env
    ):
        daemon, thread = start_daemon(tmp_path, "tcp", tcp=":0")
        try:
            assert daemon.tcp_endpoint.startswith("tcp://127.0.0.1:")
            cells = [echo_cell(f"e{i}", i) for i in range(4)]
            with ReproServiceClient(socket_path=daemon.tcp_endpoint,
                                    timeout=60) as client:
                assert client.hello()["protocol"] == PROTOCOL_VERSION
                payloads = client.run_cells(cells, label="tcp-roundtrip")
            serial = run_cells(cells, backend="serial", cache=None,
                               integrity="ignore")
            assert json.dumps(payloads) == json.dumps(serial)
        finally:
            stop_daemon(daemon, thread)

    def test_handshake_refuses_protocol_mismatch(self, tmp_path,
                                                 no_backend_env):
        daemon, thread = start_daemon(tmp_path, "vers")
        try:
            sock = connect_endpoint(daemon.config.resolved_socket_path(),
                                    timeout=10)
            try:
                stale = hello_message("time-traveller")
                stale["protocol"] = PROTOCOL_VERSION + 1
                send_message(sock, stale)
                decoder = FrameDecoder()
                frames = []
                while not frames:
                    frames = decoder.feed(sock.recv(65536))
                reply = frames[0]
            finally:
                sock.close()
            assert reply["ok"] is False
            assert reply["code"] == "protocol-version"
        finally:
            stop_daemon(daemon, thread)

    def test_connect_retries_until_late_daemon_binds(self, tmp_path,
                                                     no_backend_env):
        # Satellite: ECONNREFUSED/ENOENT during the retry window must
        # be absorbed — the daemon binds ~0.3s after the client starts
        # dialling a not-yet-existing socket path.
        sock_path = str(tmp_path / "late.sock")
        holder = {}

        def late_start():
            time.sleep(0.3)
            holder["pair"] = start_daemon(tmp_path, "late")

        starter = threading.Thread(target=late_start)
        starter.start()
        try:
            client = ReproServiceClient(socket_path=sock_path, timeout=60,
                                        connect_retry=10.0)
            with client:
                assert client.hello()["protocol"] == PROTOCOL_VERSION
        finally:
            starter.join()
            if "pair" in holder:
                stop_daemon(*holder["pair"])

    def test_hard_connect_errors_fail_without_retrying(self, tmp_path):
        started = time.monotonic()
        with pytest.raises(ServiceError, match="cannot reach"):
            connect_endpoint(str(tmp_path / "nobody.sock"), timeout=5,
                             retry_window=0.2)
        # the ENOENT retries stop at the window, not the timeout
        assert time.monotonic() - started < 3


# ----------------------------------------------------------------------
# Affinity routing and adaptive splitting
# ----------------------------------------------------------------------
class TestRoutingAndSplitting:
    def table1_cell(self, ops, environment="hypernel"):
        return Cell(kind="table1", environment=environment,
                    workload="lmbench",
                    spec={"ops": list(ops), "warmup": 1, "iterations": 2},
                    cacheable=False)

    def test_route_is_stable_and_environment_keyed(self):
        names = ["shard0", "shard1", "shard2"]
        cell = echo_cell("env-a", 1)
        first = fabric.route_shard(cell, names)
        assert all(fabric.route_shard(cell, names) == first
                   for _ in range(10))
        # same environment key -> same shard, whatever the value
        twin = echo_cell("env-a", 999)
        assert fabric.route_shard(twin, names) == first

    def test_dead_shard_redistributes_deterministically(self):
        cells = [self.table1_cell(["mmap"], environment=f"env{i}")
                 for i in range(8)]
        full = ["shard0", "shard1", "shard2"]
        survivors = ["shard0", "shard2"]
        rerouted = [fabric.route_shard(cell, survivors) for cell in cells]
        assert set(rerouted) <= set(survivors)
        # cells that never lived on the dead shard may move too (modulo
        # changes), but the mapping stays a pure function of the list
        assert rerouted == [fabric.route_shard(cell, survivors)
                            for cell in cells]
        assert fabric.route_shard(cells[0], full) in full

    def test_split_cell_partitions_preserving_order(self):
        cell = self.table1_cell(["a", "b", "c", "d", "e"])
        subcells = fabric.split_cell(cell, 2)
        assert [sub.workload for sub in subcells] == [
            "lmbench[1/2]", "lmbench[2/2]"]
        assert [sub.spec["ops"] for sub in subcells] == [
            ["a", "b", "c"], ["d", "e"]]
        # each subcell re-executes the ops before its slice unrecorded,
        # so measured values see the unsplit run's state sequence
        assert [sub.spec["context_ops"] for sub in subcells] == [
            [], ["a", "b", "c"]]
        for sub in subcells:
            assert sub.environment == cell.environment
            assert sub.spec["iterations"] == cell.spec["iterations"]

    def test_split_clamps_pieces_to_item_count(self):
        cell = self.table1_cell(["a", "b"])
        assert len(fabric.split_cell(cell, 5)) == 2

    def test_unsplittable_cells_come_back_whole(self):
        assert fabric.split_cell(echo_cell("e", 1), 4) == [echo_cell("e", 1)]
        single = self.table1_cell(["only"])
        assert fabric.split_cell(single, 4) == [single]

    def test_adaptive_split_is_noop_with_enough_cells(self):
        cells = [self.table1_cell(["a", "b"], environment=f"e{i}")
                 for i in range(4)]
        assert fabric.adaptive_split(cells, 4) == cells

    def test_adaptive_split_reaches_slot_count(self):
        cells = [self.table1_cell(["a", "b", "c", "d"],
                                  environment=f"e{i}") for i in range(2)]
        split = fabric.adaptive_split(cells, 4)
        assert len(split) == 4
        # flattening the subcell op lists reproduces the originals
        assert [op for sub in split[:2] for op in sub.spec["ops"]] == [
            "a", "b", "c", "d"]

    def test_maybe_split_only_touches_fabric_batches(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)
        cells = [self.table1_cell(["a", "b", "c", "d"])]
        assert fabric.maybe_split_for_fabric(cells, "auto", 2, 2) == cells
        assert len(fabric.maybe_split_for_fabric(cells, "fabric", 2, 2)) == 4
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "fabric")
        assert len(fabric.maybe_split_for_fabric(cells, "auto", 2, 2)) == 4


# ----------------------------------------------------------------------
# State file and endpoint resolution
# ----------------------------------------------------------------------
class TestFabricState:
    def test_state_round_trip_and_clear(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FABRIC_STATE",
                           str(tmp_path / "fabric.json"))
        document = {"version": fabric.STATE_VERSION, "workdir": "/x",
                    "shards": [{"name": "shard0", "endpoint": "/x/a.sock",
                                "pid": 1}]}
        fabric.write_state(document)
        assert fabric.read_state() == document
        fabric.clear_state()
        assert fabric.read_state() is None

    def test_corrupt_or_mismatched_state_reads_as_none(self, tmp_path,
                                                       monkeypatch):
        path = tmp_path / "fabric.json"
        monkeypatch.setenv("REPRO_FABRIC_STATE", str(path))
        path.write_text("not json")
        assert fabric.read_state() is None
        path.write_text(json.dumps({"version": 999, "shards": []}))
        assert fabric.read_state() is None

    def test_endpoint_env_wins_over_state_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FABRIC_STATE",
                           str(tmp_path / "fabric.json"))
        fabric.write_state({"version": fabric.STATE_VERSION,
                            "workdir": "/x",
                            "shards": [{"name": "s", "endpoint": "/s.sock",
                                        "pid": 2}]})
        assert fabric.resolve_endpoints() == ["/s.sock"]
        monkeypatch.setenv("REPRO_FABRIC_ENDPOINTS",
                           "tcp://h:1, /other.sock")
        assert fabric.resolve_endpoints() == ["tcp://h:1", "/other.sock"]

    def test_no_state_resolves_to_none(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FABRIC_STATE",
                           str(tmp_path / "absent.json"))
        monkeypatch.delenv("REPRO_FABRIC_ENDPOINTS", raising=False)
        assert fabric.resolve_endpoints() is None


# ----------------------------------------------------------------------
# Coordinator over live shards
# ----------------------------------------------------------------------
class TestCoordinator:
    def test_batch_byte_identical_with_stealing(self, two_shards):
        # Every selftest cell shares one environment key, so affinity
        # routes the whole batch to one shard — the other shard's only
        # path to work is stealing from the victim's tail.
        cells = [sleep_cell(f"s{i}", 0.15) for i in range(3)]
        cells += [echo_cell(f"e{i}", i) for i in range(5)]
        config = fabric.FabricConfig(endpoints=two_shards, jobs=1)
        with fabric.FabricCoordinator(config) as coordinator:
            payloads = coordinator.run_cells(cells, integrity="ignore")
            snapshot = coordinator.stats_snapshot()
        serial = run_cells(cells, backend="serial", cache=None,
                           integrity="ignore")
        assert json.dumps(payloads) == json.dumps(serial)
        counters = snapshot["counters"]
        assert counters["cells_routed"] == len(cells)
        assert counters["cells_completed"] == len(cells)
        assert counters["cells_stolen"] > 0
        assert counters["shard_failures"] == 0

    def test_unreachable_shard_degrades_not_dies(self, two_shards,
                                                 tmp_path):
        endpoints = [two_shards[0], str(tmp_path / "nobody.sock")]
        config = fabric.FabricConfig(endpoints=endpoints, jobs=1,
                                     connect_retry=0.2)
        cells = [echo_cell(f"e{i}", i) for i in range(3)]
        with fabric.FabricCoordinator(config) as coordinator:
            assert len(coordinator.live_shards()) == 1
            payloads = coordinator.run_cells(cells, integrity="ignore")
            assert coordinator.stats.counters["shard_failures"] == 1
        assert [p["value"] for p in payloads] == [0, 1, 2]

    def test_no_reachable_shard_raises_unavailable(self, tmp_path):
        config = fabric.FabricConfig(
            endpoints=[str(tmp_path / "a.sock"), str(tmp_path / "b.sock")],
            connect_retry=0.1,
        )
        with pytest.raises(fabric.FabricUnavailable, match="no fabric"):
            fabric.FabricCoordinator(config).start()

    def test_failing_cell_fails_the_batch_loudly(self, two_shards):
        bad = Cell(kind="selftest", environment="x", workload="fault",
                   spec={"mode": "fail"}, cacheable=False)
        config = fabric.FabricConfig(endpoints=two_shards, jobs=1)
        with fabric.FabricCoordinator(config) as coordinator:
            with pytest.raises(fabric.FabricError, match="failed"):
                coordinator.run_cells([echo_cell("a", 1), bad],
                                      integrity="ignore")

    def test_stats_round_trip(self):
        stats = FabricStats()
        stats.add("batches")
        stats.add("cells_routed", 5, shard="shard0")
        stats.add("cells_stolen", 2, shard="shard1")
        stats.set_gauge("live_shards", 2)
        rebuilt = FabricStats.from_dict(
            json.loads(json.dumps(stats.to_dict())))
        assert rebuilt.to_dict() == stats.to_dict()
        board = rebuilt.format()
        assert "cells_routed" in board and "shard0" in board


# ----------------------------------------------------------------------
# Dead-shard requeue (spawned daemons, a real SIGKILL)
# ----------------------------------------------------------------------
class TestDeadShardRequeue:
    def test_sigkill_mid_batch_requeues_and_completes(self, tmp_path,
                                                      no_backend_env):
        cells = [sleep_cell(f"k{i}", 0.2) for i in range(6)]
        config = fabric.FabricConfig(shards=2, jobs=1, no_cache=True,
                                     socket_dir=str(tmp_path / "fab"))
        coordinator = fabric.FabricCoordinator(config)
        try:
            coordinator.start()
            names = sorted(s.name for s in coordinator.live_shards())
            victim_name = fabric.route_shard(cells[0], names)
            victim = next(s for s in coordinator.shards
                          if s.name == victim_name)
            timer = threading.Timer(
                0.3, lambda: victim.process.send_signal(signal.SIGKILL))
            timer.start()
            try:
                payloads = coordinator.run_cells(cells, integrity="ignore")
            finally:
                timer.cancel()
            counters = coordinator.stats.counters
            assert victim.dead
            assert counters["shard_failures"] >= 1
            assert counters["cells_requeued"] >= 1
        finally:
            coordinator.stop()
        serial = run_cells(cells, backend="serial", cache=None,
                           integrity="ignore")
        assert json.dumps(payloads) == json.dumps(serial)
        # both spawned daemons are reaped, SIGKILLed one included
        for shard in coordinator.shards:
            assert shard.process.poll() is not None


# ----------------------------------------------------------------------
# Cancel mid-dispatch on a remote (TCP) shard — satellite
# ----------------------------------------------------------------------
class TestRemoteCancel:
    def test_cancel_propagates_without_leaking_children(self, tmp_path,
                                                        no_backend_env):
        daemon, thread = start_daemon(tmp_path, "remote", tcp=":0",
                                      shard_id="remote0")
        try:
            # Warm the pool first: its long-lived server is a legitimate
            # child; snapshot /proc after it exists.
            with ReproServiceClient(socket_path=daemon.tcp_endpoint,
                                    timeout=60) as warm:
                warm.run_cells([echo_cell("warm", 0)], integrity="ignore")
            before = live_children()

            config = fabric.FabricConfig(endpoints=[daemon.tcp_endpoint],
                                         jobs=2)
            coordinator = fabric.FabricCoordinator(config)
            coordinator.start()
            outcome = {}

            def run_batch():
                try:
                    coordinator.run_cells(
                        [sleep_cell(f"c{i}", 0.5) for i in range(6)],
                        integrity="ignore", label="doomed")
                except Exception as exc:  # noqa: BLE001 - asserted below
                    outcome["error"] = exc

            runner = threading.Thread(target=run_batch)
            runner.start()
            deadline = time.monotonic() + 20
            shard = coordinator.shards[0]
            while shard.current_job is None:
                assert time.monotonic() < deadline, "job never dispatched"
                time.sleep(0.02)
            coordinator.cancel()
            runner.join(timeout=30)
            assert not runner.is_alive()
            assert isinstance(outcome.get("error"), fabric.FabricCancelled)
            assert coordinator.stats.counters["cancelled_batches"] == 1
            coordinator.stop()

            # no leaked children once the cancelled workers unwind
            if before is not None:
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    leaked = live_children() - before
                    if not leaked:
                        break
                    time.sleep(0.1)
                assert not leaked, f"leaked children: {leaked}"

            # the shard daemon survived the cancel and still serves
            with ReproServiceClient(socket_path=daemon.tcp_endpoint,
                                    timeout=60) as client:
                again = client.run_cells([echo_cell("again", 7)],
                                         integrity="ignore")
            assert again[0]["value"] == 7
        finally:
            stop_daemon(daemon, thread)


# ----------------------------------------------------------------------
# runner/CLI integration
# ----------------------------------------------------------------------
class TestIntegration:
    def test_run_cells_fabric_backend_uses_attached_endpoints(
        self, two_shards, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FABRIC_ENDPOINTS",
                           ",".join(two_shards))
        cells = [echo_cell(f"e{i}", i) for i in range(4)]
        payloads = run_cells(cells, backend="fabric", cache=None,
                             integrity="ignore")
        serial = run_cells(cells, backend="serial", cache=None,
                           integrity="ignore")
        assert json.dumps(payloads) == json.dumps(serial)

    def test_fabric_backend_degrades_when_no_shard_comes_up(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_FABRIC_ENDPOINTS",
                           str(tmp_path / "nobody.sock"))
        cells = [echo_cell(f"e{i}", i) for i in range(3)]
        payloads = run_cells(cells, backend="fabric", cache=None,
                             integrity="ignore")
        assert [p["value"] for p in payloads] == [0, 1, 2]

    def test_reproctl_stats_json_round_trips(self, tmp_path,
                                             no_backend_env, capsys):
        from repro import cli
        from repro.obs.service import ServiceStats

        daemon, thread = start_daemon(tmp_path, "stats", shard_id="s7")
        try:
            with ReproServiceClient(
                socket_path=daemon.config.resolved_socket_path(),
                timeout=60,
            ) as client:
                client.run_cells([echo_cell("e", 1)], integrity="ignore")
            code = cli.main([
                "reproctl", "--socket",
                daemon.config.resolved_socket_path(), "stats", "--json",
            ])
        finally:
            stop_daemon(daemon, thread)
        assert code == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["shard"] == "s7"
        assert parsed["counters"]["jobs_completed"] >= 1
        rebuilt = ServiceStats.from_dict(parsed)
        assert rebuilt.counters["jobs_completed"] == parsed["counters"][
            "jobs_completed"]
        assert "jobs_completed" in rebuilt.format()
