"""Fork-server backend: COW warm workers, retries, fallbacks, equivalence.

The contract (ISSUE 4, DESIGN.md §5d): the fork server must be
observationally identical to the pool and serial backends — same
payloads byte-for-byte, same retry-once policy, same timeout errors —
while a platform that cannot fork (or ``REPRO_BENCH_BACKEND=pool``)
silently degrades to the pool path.
"""

import os

import pytest

from repro.analysis.figures import run_figure6
from repro.analysis.monitoring import run_table2
from repro.analysis.tables import run_table1
from repro.config import PlatformConfig
from repro.tools import forkserver
from repro.tools import runner
from repro.tools.runner import Cell, RunnerError, run_cells

REDUCED_OPS = ["syscall stat", "signal install", "mmap"]

pytestmark = pytest.mark.skipif(
    not forkserver.fork_available(),
    reason="fork-server backend needs os.fork",
)


def small_platform_config():
    return PlatformConfig(
        dram_bytes=64 * 1024 * 1024, secure_bytes=8 * 1024 * 1024
    )


def echo_cell(name, value):
    return Cell(
        kind="selftest",
        environment=name,
        workload="echo",
        spec={"mode": "echo", "value": value},
        cacheable=False,
    )


def live_children():
    """PIDs of this process's direct children (Linux /proc), or None.

    Unrelated long-lived children (multiprocessing's resource tracker,
    pytest plumbing) show up too — callers compare before/after sets
    rather than expecting emptiness.
    """
    children = set()
    try:
        for tid in os.listdir("/proc/self/task"):
            with open(f"/proc/self/task/{tid}/children") as handle:
                children.update(int(pid) for pid in handle.read().split())
    except OSError:
        return None
    return children


@pytest.fixture
def no_backend_env(monkeypatch):
    """Tests pin ``backend=`` explicitly; a stray env var must not win."""
    monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)


# ----------------------------------------------------------------------
# Basic dispatch and ordering
# ----------------------------------------------------------------------
class TestDispatch:
    def test_payloads_come_back_in_cell_order(self, no_backend_env):
        cells = [echo_cell(f"c{i}", i * 11) for i in range(7)]
        payloads = run_cells(cells, jobs=3, backend="forkserver")
        assert [p["value"] for p in payloads] == [i * 11 for i in range(7)]

    def test_single_cell_single_job(self, no_backend_env):
        [payload] = run_cells([echo_cell("solo", "x")], jobs=1,
                              backend="forkserver")
        assert payload["value"] == "x"

    def test_no_leaked_children_after_run(self, no_backend_env):
        before = live_children()
        if before is None:
            pytest.skip("needs /proc children accounting")
        run_cells([echo_cell(f"c{i}", i) for i in range(4)], jobs=2,
                  backend="forkserver")
        # Every server (and grandchild) was stopped and reaped.
        assert live_children() <= before


# ----------------------------------------------------------------------
# Failure contract: retry once from the pristine parent image
# ----------------------------------------------------------------------
class TestFailures:
    def test_worker_killed_mid_cell_is_retried_from_pristine_parent(
        self, tmp_path, no_backend_env
    ):
        cells = [
            Cell(kind="selftest", environment=f"victim{i}", workload="kill",
                 spec={"mode": "kill_until_marker",
                       "marker": str(tmp_path / f"victim{i}.marker")},
                 cacheable=False)
            for i in range(2)
        ]
        payloads = run_cells(cells, jobs=2, backend="forkserver")
        assert [p["value"] for p in payloads] == ["ok after respawn"] * 2
        for i in range(2):
            assert (tmp_path / f"victim{i}.marker").exists()

    def test_transient_exception_is_retried_once(self, tmp_path,
                                                 no_backend_env):
        cells = [
            Cell(kind="selftest", environment=f"flaky{i}", workload="fault",
                 spec={"mode": "fail_until_marker",
                       "marker": str(tmp_path / f"flaky{i}.marker")},
                 cacheable=False)
            for i in range(3)
        ]
        payloads = run_cells(cells, jobs=3, backend="forkserver")
        assert [p["value"] for p in payloads] == ["ok after retry"] * 3

    def test_persistent_failure_names_the_lowest_indexed_cell(
        self, no_backend_env
    ):
        cells = [
            Cell(kind="selftest", environment=name, workload="fault",
                 spec={"mode": "fail"}, cacheable=False)
            for name in ("one", "two", "three")
        ]
        with pytest.raises(RunnerError, match=r"selftest:one:fault"):
            run_cells(cells, jobs=3, backend="forkserver")

    def test_timeout_raises_runner_error_naming_cell(self, no_backend_env):
        cells = [
            Cell(kind="selftest", environment=f"sleepy{i}", workload="nap",
                 spec={"mode": "sleep", "seconds": 5.0}, cacheable=False)
            for i in range(2)
        ]
        before = live_children()
        with pytest.raises(RunnerError, match=r"selftest:sleepy\d:nap.*timed out"):
            run_cells(cells, jobs=2, backend="forkserver", timeout=0.3)
        # The killed server group must still be fully reaped.
        if before is not None:
            assert live_children() <= before

    def test_environment_build_failure_demotes_to_serial_error(
        self, no_backend_env
    ):
        # An unknown system name fails in the server's prototype build;
        # the cell is demoted to serial, which fails loudly too — the
        # contract is "surface the error", never "hang".
        cell = Cell(kind="table1", environment="no-such-system",
                    workload="table1", spec={"ops": REDUCED_OPS},
                    platform_config=small_platform_config(),
                    cacheable=False)
        with pytest.raises(RunnerError, match=r"table1:no-such-system"):
            run_cells([cell, echo_cell("bystander", 1)], jobs=2,
                      backend="forkserver")


# ----------------------------------------------------------------------
# Fallback matrix: forkserver -> pool -> serial
# ----------------------------------------------------------------------
class TestFallbacks:
    def test_fork_unavailable_falls_back_to_pool(self, monkeypatch,
                                                 no_backend_env):
        monkeypatch.setattr(forkserver, "fork_available", lambda: False)
        created = []
        real_factory = runner._default_executor_factory

        def spying_factory(jobs):
            pool = real_factory(jobs)
            created.append(jobs)
            return pool

        monkeypatch.setattr(runner, "_default_executor_factory",
                            spying_factory)
        cells = [echo_cell(f"c{i}", i) for i in range(3)]
        payloads = run_cells(cells, jobs=2, backend="forkserver")
        assert [p["value"] for p in payloads] == [0, 1, 2]
        assert created == [2]  # the pool backend actually ran

    def test_auto_resolves_to_pool_when_fork_unavailable(self, monkeypatch,
                                                         no_backend_env):
        monkeypatch.setattr(forkserver, "fork_available", lambda: False)
        assert runner._resolve_backend("auto", jobs=4,
                                       executor_factory=None) == "pool"

    def test_auto_resolves_to_forkserver_on_posix_multijob(
        self, no_backend_env
    ):
        assert runner._resolve_backend("auto", jobs=4,
                                       executor_factory=None) == "forkserver"
        # jobs=1 has nothing to fan out: the pool path (which itself
        # degrades to serial at jobs=1) is the resolution.
        assert runner._resolve_backend("auto", jobs=1,
                                       executor_factory=None) == "pool"

    def test_env_var_forces_pool_over_forkserver_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "pool")

        def exploding_run_pending(*args, **kwargs):  # pragma: no cover
            raise AssertionError("forkserver must not run under "
                                 "REPRO_BENCH_BACKEND=pool")

        monkeypatch.setattr(forkserver, "run_pending", exploding_run_pending)
        cells = [echo_cell(f"c{i}", i) for i in range(2)]
        payloads = run_cells(cells, jobs=2, backend="forkserver")
        assert [p["value"] for p in payloads] == [0, 1]

    def test_env_var_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "serial")

        def exploding_factory(jobs):  # pragma: no cover - must not run
            raise AssertionError("serial backend must not create a pool")

        monkeypatch.setattr(runner, "_default_executor_factory",
                            exploding_factory)
        payloads = run_cells([echo_cell("a", 1), echo_cell("b", 2)],
                             jobs=4, backend="forkserver")
        assert [p["value"] for p in payloads] == [1, 2]

    def test_executor_factory_callers_keep_the_pool_path(self, no_backend_env):
        # test_runner_cache-style callers observe dispatch through the
        # factory; handing them the fork server would blind them.
        assert runner._resolve_backend(
            "forkserver", jobs=2, executor_factory=object()
        ) == "pool"

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)
        with pytest.raises(ValueError, match="unknown backend"):
            run_cells([], backend="warpdrive")
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "warpdrive")
        with pytest.raises(ValueError, match="unknown backend"):
            run_cells([], backend="auto")

    def test_run_pending_raises_unavailable_without_fork(self, monkeypatch):
        monkeypatch.setattr(forkserver, "fork_available", lambda: False)
        with pytest.raises(forkserver.ForkServerUnavailable):
            forkserver.run_pending([echo_cell("a", 1)], [0], 1, None)


# ----------------------------------------------------------------------
# Byte-identical equivalence with the serial backend
# ----------------------------------------------------------------------
class TestForkserverEquivalence:
    def test_table1_forkserver_jobs4_matches_serial_jobs1(
        self, no_backend_env
    ):
        kwargs = dict(platform_factory=small_platform_config,
                      warmup=2, iterations=4, ops=REDUCED_OPS)
        serial = run_table1(jobs=1, backend="serial", **kwargs)
        forked = run_table1(jobs=4, backend="forkserver", **kwargs)
        assert forked.rows == serial.rows
        assert forked.format() == serial.format()

    def test_figure6_forkserver_matches_serial(self, no_backend_env):
        serial = run_figure6(scale=0.02,
                             platform_factory=small_platform_config,
                             jobs=1, backend="serial")
        forked = run_figure6(scale=0.02,
                             platform_factory=small_platform_config,
                             jobs=3, backend="forkserver")
        assert forked.raw_us == serial.raw_us
        assert forked.normalized == serial.normalized
        assert forked.format() == serial.format()

    def test_table2_forkserver_matches_serial(self, no_backend_env):
        serial = run_table2(scale=0.02,
                            platform_factory=small_platform_config,
                            jobs=1, backend="serial")
        forked = run_table2(scale=0.02,
                            platform_factory=small_platform_config,
                            jobs=2, backend="forkserver")
        assert forked.counts == serial.counts
        assert forked.format() == serial.format()


# ----------------------------------------------------------------------
# Environment grouping
# ----------------------------------------------------------------------
class TestEnvironmentKey:
    def test_same_environment_shares_a_key(self):
        config = small_platform_config()
        a = Cell(kind="table1", environment="hypernel", workload="w1",
                 platform_config=config)
        b = Cell(kind="table1", environment="hypernel", workload="w2",
                 platform_config=config)
        assert forkserver.environment_key(a) == forkserver.environment_key(b)
        assert forkserver.environment_key(a)[0] == "env"

    def test_different_environment_gets_its_own_server(self):
        a = Cell(kind="table1", environment="hypernel", workload="w")
        b = Cell(kind="table1", environment="baseline", workload="w")
        assert forkserver.environment_key(a) != forkserver.environment_key(b)

    def test_selftest_kind_lands_on_the_generic_server(self):
        assert forkserver.environment_key(echo_cell("x", 1)) == ("generic",)

    def test_snapshot_path_distinguishes_warm_and_cold(self):
        cold = Cell(kind="table1", environment="hypernel", workload="w")
        warm = Cell(kind="table1", environment="hypernel", workload="w",
                    snapshot_path="/tmp/img.snap")
        assert (forkserver.environment_key(cold)
                != forkserver.environment_key(warm))


# ----------------------------------------------------------------------
# Frame protocol
# ----------------------------------------------------------------------
class TestFrameProtocol:
    def test_frames_reassemble_across_arbitrary_chunking(self):
        import pickle
        import struct

        payloads = [("ok", 1, {"value": "x" * 1000}), ("stop",)]
        stream = b"".join(
            struct.pack(">Q", len(blob)) + blob
            for blob in (pickle.dumps(p) for p in payloads)
        )
        buf = forkserver._FrameBuffer()
        out = []
        for i in range(0, len(stream), 7):  # adversarially small chunks
            out.extend(buf.feed(stream[i:i + 7]))
        assert out == payloads

    def test_truncated_single_frame_decodes_to_none(self):
        import pickle
        import struct

        blob = pickle.dumps(("ok-local", {"value": 1}))
        whole = struct.pack(">Q", len(blob)) + blob
        assert forkserver._decode_single_frame(whole) == (
            "ok-local", {"value": 1})
        assert forkserver._decode_single_frame(whole[:-1]) is None
        assert forkserver._decode_single_frame(b"") is None
