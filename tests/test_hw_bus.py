"""Unit tests for the memory bus: transfers, timing, snooping."""

import pytest

from repro.hw.bus import BusTransaction, TxnKind
from tests.helpers import small_platform

BASE = 0x8000_0000


@pytest.fixture
def platform():
    return small_platform()


@pytest.fixture
def captured(platform):
    log = []
    platform.bus.attach_snooper(log.append)
    return log


class TestWordTransfers:
    def test_write_then_read(self, platform):
        platform.bus.write(BASE, 0x1234)
        assert platform.bus.read(BASE) == 0x1234

    def test_write_charges_time(self, platform):
        before = platform.clock.now
        platform.bus.write(BASE, 1)
        assert platform.clock.now > before

    def test_uncharged_access_leaves_clock(self, platform):
        before = platform.clock.now
        platform.bus.read(BASE, charge=False)
        assert platform.clock.now == before

    def test_snooper_sees_write_value(self, platform, captured):
        platform.bus.write(BASE + 8, 0xAB, initiator="dma")
        txn = captured[-1]
        assert txn.kind is TxnKind.WRITE
        assert txn.paddr == BASE + 8
        assert txn.value == 0xAB
        assert txn.initiator == "dma"

    def test_snooper_sees_reads(self, platform, captured):
        platform.bus.read(BASE)
        assert captured[-1].kind is TxnKind.READ
        assert captured[-1].value is None

    def test_detach_snooper(self, platform, captured):
        platform.bus.detach_snooper(captured.append)
        platform.bus.write(BASE, 1)
        assert captured == []


class TestLineTransfers:
    def test_fill_line_notifies(self, platform, captured):
        platform.bus.fill_line(BASE)
        assert captured[-1].kind is TxnKind.LINE_FILL
        assert captured[-1].nwords == 8

    def test_writeback_carries_no_value(self, platform, captured):
        platform.bus.writeback_line(BASE)
        txn = captured[-1]
        assert txn.kind is TxnKind.WRITEBACK
        assert txn.value is None
        assert txn.is_write_like


class TestBlockTransfers:
    def test_block_write_reports_range(self, platform, captured):
        platform.bus.write_block(BASE, 100)
        txn = captured[-1]
        assert txn.kind is TxnKind.BLOCK_WRITE
        assert txn.nwords == 100
        assert txn.is_write_like

    def test_zero_block_is_noop(self, platform, captured):
        platform.bus.write_block(BASE, 0)
        assert captured == []

    def test_block_write_cheaper_than_words(self, platform):
        start = platform.clock.now
        platform.bus.write_block(BASE, 64)
        burst = platform.clock.now - start
        start = platform.clock.now
        for i in range(64):
            platform.bus.write(BASE + 0x10000 + i * 8, 0)
        individual = platform.clock.now - start
        assert burst < individual


class TestBackdoor:
    def test_peek_poke_bypass_timing_and_snoop(self, platform, captured):
        before = platform.clock.now
        platform.bus.poke(BASE, 99)
        assert platform.bus.peek(BASE) == 99
        assert platform.clock.now == before
        assert captured == []


class TestTransactionProperties:
    def test_read_is_not_write_like(self):
        txn = BusTransaction(TxnKind.READ, 0)
        assert not txn.is_write_like

    def test_frozen(self):
        txn = BusTransaction(TxnKind.WRITE, 0, 1)
        with pytest.raises(AttributeError):
            txn.paddr = 5
