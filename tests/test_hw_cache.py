"""Unit tests for the cache models and the hierarchy's bus behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hw.bus import TxnKind
from repro.hw.cache import Cache
from tests.helpers import small_platform

BASE = 0x8000_0000


class TestCacheBasics:
    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            Cache("bad", 1000, 3)

    def test_miss_then_hit(self):
        cache = Cache("c", 4096, 2)
        assert not cache.lookup(0x1000)
        cache.insert(0x1000)
        assert cache.lookup(0x1000)

    def test_lru_eviction_order(self):
        cache = Cache("c", 2 * 64, 2)  # one set, two ways
        cache.insert(0x0)
        cache.insert(0x40 * cache.num_sets)  # same set
        cache.lookup(0x0)  # refresh line 0 -> line at 0x40*sets is LRU
        evicted = cache.insert(0x80 * cache.num_sets)
        assert evicted is not None
        assert evicted[0] == 0x40 * cache.num_sets

    def test_dirty_bit_survives_reinsert(self):
        cache = Cache("c", 4096, 2)
        cache.insert(0x1000, dirty=True)
        cache.insert(0x1000, dirty=False)
        dirty = cache.remove(0x1000)
        assert dirty is True

    def test_mark_dirty_absent_line_noop(self):
        cache = Cache("c", 4096, 2)
        cache.mark_dirty(0x2000)
        assert cache.remove(0x2000) is None

    def test_eviction_reports_dirtiness(self):
        cache = Cache("c", 64, 1)  # single line
        cache.insert(0x0, dirty=True)
        evicted = cache.insert(0x40 * cache.num_sets)
        # num_sets == 1, so any other line address conflicts
        assert evicted == (0x0, True)

    def test_invalidate_all(self):
        cache = Cache("c", 4096, 2)
        cache.insert(0x1000)
        cache.invalidate_all()
        assert not cache.lookup(0x1000, touch=False)


class TestHierarchy:
    @pytest.fixture
    def platform(self):
        return small_platform()

    def test_read_returns_written_value_cached(self, platform):
        platform.caches.write(BASE, 42, cacheable=True)
        assert platform.caches.read(BASE, cacheable=True) == 42

    def test_read_returns_written_value_uncached(self, platform):
        platform.caches.write(BASE, 43, cacheable=False)
        assert platform.caches.read(BASE, cacheable=False) == 43

    def test_cacheable_and_uncacheable_views_agree(self, platform):
        platform.caches.write(BASE, 7, cacheable=True)
        assert platform.caches.read(BASE, cacheable=False) == 7

    def test_hit_is_cheaper_than_miss(self, platform):
        start = platform.clock.now
        platform.caches.read(BASE, cacheable=True)
        miss_cost = platform.clock.now - start
        start = platform.clock.now
        platform.caches.read(BASE, cacheable=True)
        hit_cost = platform.clock.now - start
        assert hit_cost < miss_cost

    def test_cacheable_write_emits_no_word_transaction(self, platform):
        log = []
        platform.bus.attach_snooper(log.append)
        platform.caches.write(BASE, 1, cacheable=True)
        kinds = {txn.kind for txn in log}
        assert TxnKind.WRITE not in kinds  # only a LINE_FILL appears

    def test_uncacheable_write_reaches_the_bus(self, platform):
        log = []
        platform.bus.attach_snooper(log.append)
        platform.caches.write(BASE, 5, cacheable=False)
        assert log[-1].kind is TxnKind.WRITE
        assert log[-1].value == 5

    def test_dirty_line_writes_back_on_pressure(self, platform):
        platform.caches.write(BASE, 1, cacheable=True)
        log = []
        platform.bus.attach_snooper(log.append)
        # Touch lines that conflict with BASE in both cache levels (the
        # L2 set stride is a multiple of the L1 set stride) until the
        # dirty line is forced all the way out to DRAM.
        l2 = platform.l2
        stride = l2.num_sets * l2.line_bytes
        for i in range(1, 4 * l2.ways):
            platform.caches.read(BASE + i * stride, cacheable=True)
        assert any(t.kind is TxnKind.WRITEBACK and t.paddr == BASE for t in log)

    def test_clean_invalidate_page_writes_back_dirty_lines(self, platform):
        platform.caches.write(BASE + 0x40, 9, cacheable=True)
        written_back = platform.caches.clean_invalidate_page(BASE)
        assert written_back == 1
        # Line is gone: next read misses (fills again).
        fills_before = platform.bus.stats.get("line_fills")
        platform.caches.read(BASE + 0x40, cacheable=True)
        assert platform.bus.stats.get("line_fills") == fills_before + 1

    def test_touch_block_dirties_lines(self, platform):
        platform.caches.touch_block(BASE, 16, is_write=True)
        written_back = platform.caches.clean_invalidate_page(BASE)
        assert written_back == 2  # 16 words = 128 bytes = 2 lines

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2047), st.integers(0, (1 << 64) - 1)),
            max_size=40,
        )
    )
    def test_hierarchy_is_transparent(self, operations):
        """Whatever the cache state, reads always see the latest write."""
        platform = small_platform()
        reference = {}
        for word_index, value in operations:
            paddr = BASE + word_index * 8
            cacheable = word_index % 3 != 0
            platform.caches.write(paddr, value, cacheable)
            reference[paddr] = value
        for paddr, value in reference.items():
            assert platform.caches.read(paddr, cacheable=True) == value
