"""Unit tests for the DMA engine and IOMMU models."""

import pytest

from repro.errors import SecurityViolation
from repro.hw.bus import TxnKind
from repro.hw.dma import DmaEngine, Iommu
from tests.helpers import small_platform

BASE = 0x8000_0000


@pytest.fixture
def platform():
    return small_platform()


class TestDmaEngine:
    def test_write_lands_in_memory(self, platform):
        engine = DmaEngine(platform.bus)
        engine.write_word(BASE + 0x100, 0xD)
        assert platform.bus.peek(BASE + 0x100) == 0xD

    def test_initiator_is_dma(self, platform):
        log = []
        platform.bus.attach_snooper(log.append)
        DmaEngine(platform.bus).write_word(BASE, 1)
        assert log[-1].initiator == "dma"
        assert log[-1].kind is TxnKind.WRITE

    def test_block_write(self, platform):
        log = []
        platform.bus.attach_snooper(log.append)
        DmaEngine(platform.bus).write_block(BASE, 32)
        assert log[-1].kind is TxnKind.BLOCK_WRITE
        assert log[-1].nwords == 32


class TestIommu:
    def test_no_windows_blocks_everything(self, platform):
        engine = DmaEngine(platform.bus, Iommu())
        with pytest.raises(SecurityViolation):
            engine.write_word(BASE, 1)
        assert platform.bus.peek(BASE) == 0  # nothing landed

    def test_granted_window_allows(self, platform):
        iommu = Iommu()
        iommu.grant(BASE, 4096)
        engine = DmaEngine(platform.bus, iommu)
        engine.write_word(BASE + 8, 5)
        assert platform.bus.peek(BASE + 8) == 5

    def test_partial_overlap_blocked(self, platform):
        """A burst straddling the window edge must be fully inside."""
        iommu = Iommu()
        iommu.grant(BASE, 4096)
        engine = DmaEngine(platform.bus, iommu)
        with pytest.raises(SecurityViolation):
            engine.write_block(BASE + 4096 - 64, 32)

    def test_revoke_all(self, platform):
        iommu = Iommu()
        iommu.grant(BASE, 4096)
        iommu.revoke_all()
        engine = DmaEngine(platform.bus, iommu)
        with pytest.raises(SecurityViolation):
            engine.write_word(BASE, 1)

    def test_stats(self, platform):
        iommu = Iommu()
        iommu.grant(BASE, 4096)
        engine = DmaEngine(platform.bus, iommu)
        engine.write_word(BASE, 1)
        with pytest.raises(SecurityViolation):
            engine.write_word(BASE + 0x10000, 1)
        assert iommu.stats.get("allowed") == 1
        assert iommu.stats.get("blocked") == 1
