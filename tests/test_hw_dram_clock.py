"""Unit tests for the clock and the DRAM row-buffer model."""

import pytest

from repro.config import CostModel
from repro.hw.clock import Clock
from repro.hw.dram import DramModel


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0

    def test_advance_accumulates(self):
        clock = Clock()
        clock.advance(10)
        clock.advance(5)
        assert clock.now == 15

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance(-1)

    def test_elapsed_since(self):
        clock = Clock()
        start = clock.now
        clock.advance(100)
        assert clock.elapsed_since(start) == 100

    def test_unit_conversion(self):
        clock = Clock(freq_hz=1e9)
        assert clock.to_us(1000) == pytest.approx(1.0)
        assert clock.to_seconds(1e9) == pytest.approx(1.0)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            Clock(freq_hz=0)


class TestDram:
    @pytest.fixture
    def dram(self):
        return DramModel(CostModel(), banks=4, row_bytes=4096)

    def test_first_access_is_row_miss(self, dram):
        assert dram.access_cycles(0x1000) == CostModel().dram_row_miss

    def test_repeat_access_is_row_hit(self, dram):
        dram.access_cycles(0x1000)
        assert dram.access_cycles(0x1008) == CostModel().dram_row_hit

    def test_conflicting_row_same_bank_misses(self, dram):
        dram.access_cycles(0x0)          # row 0, bank 0
        # 4 banks * 4096-byte rows: row 4 maps back to bank 0.
        assert dram.access_cycles(4 * 4096) == CostModel().dram_row_miss

    def test_different_banks_keep_rows_open(self, dram):
        dram.access_cycles(0 * 4096)     # bank 0
        dram.access_cycles(1 * 4096)     # bank 1
        assert dram.access_cycles(0 * 4096 + 8) == CostModel().dram_row_hit
        assert dram.access_cycles(1 * 4096 + 8) == CostModel().dram_row_hit

    def test_burst_streams_after_first_beat(self, dram):
        costs = CostModel()
        cycles = dram.burst_cycles(0x2000, 8)
        assert cycles == costs.dram_row_miss + 7

    def test_burst_zero_words(self, dram):
        assert dram.burst_cycles(0x2000, 0) == 0

    def test_reset_closes_rows(self, dram):
        dram.access_cycles(0x1000)
        dram.reset()
        assert dram.access_cycles(0x1000) == CostModel().dram_row_miss

    def test_stats_counting(self, dram):
        dram.access_cycles(0x1000)
        dram.access_cycles(0x1008)
        assert dram.stats.get("row_misses") == 1
        assert dram.stats.get("row_hits") == 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            DramModel(CostModel(), banks=0)
