"""Unit tests for the interrupt controller."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.interrupt import InterruptController


@pytest.fixture
def gic():
    return InterruptController()


class TestRegistration:
    def test_unregistered_line_rejected(self, gic):
        with pytest.raises(ConfigurationError):
            gic.raise_irq(5)

    def test_double_registration_rejected(self, gic):
        gic.register(1, lambda irq: None)
        with pytest.raises(ConfigurationError):
            gic.register(1, lambda irq: None)


class TestDispatch:
    def test_unmasked_irq_dispatches_immediately(self, gic):
        fired = []
        gic.register(1, fired.append)
        gic.raise_irq(1)
        assert fired == [1]

    def test_masked_irq_pends(self, gic):
        fired = []
        gic.register(1, fired.append)
        gic.mask(1)
        gic.raise_irq(1)
        assert fired == []
        assert gic.pending(1) == 1

    def test_unmask_drains_pending(self, gic):
        fired = []
        gic.register(1, fired.append)
        gic.mask(1)
        gic.raise_irq(1)
        gic.raise_irq(1)
        gic.unmask(1)
        assert fired == [1, 1]
        assert gic.pending(1) == 0

    def test_reentrant_raise_defers_until_handler_returns(self, gic):
        """An IRQ raised from inside its own handler runs after it."""
        depth = {"value": 0, "max": 0, "count": 0}

        def handler(irq):
            depth["value"] += 1
            depth["max"] = max(depth["max"], depth["value"])
            depth["count"] += 1
            if depth["count"] == 1:
                gic.raise_irq(irq)  # re-raise from inside service
            depth["value"] -= 1

        gic.register(2, handler)
        gic.raise_irq(2)
        assert depth["count"] == 2
        assert depth["max"] == 1  # never nested

    def test_stats(self, gic):
        gic.register(1, lambda irq: None)
        gic.raise_irq(1)
        gic.raise_irq(1)
        assert gic.stats.get("raised") == 2
        assert gic.stats.get("dispatched") == 2

    def test_mask_during_handler_stops_drain(self, gic):
        fired = []

        def handler(irq):
            fired.append(irq)
            gic.mask(irq)

        gic.register(3, handler)
        gic.raise_irq(3)
        gic.raise_irq(3)
        assert fired == [3]
        assert gic.pending(3) == 1
