"""Unit tests for the sparse physical memory model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlignmentError, MemoryRangeError
from repro.hw.memory import PhysicalMemory

BASE = 0x8000_0000
SIZE = 1 * 1024 * 1024


@pytest.fixture
def memory():
    mem = PhysicalMemory()
    mem.add_range(BASE, SIZE)
    return mem


class TestRanges:
    def test_unbacked_read_rejected(self, memory):
        with pytest.raises(MemoryRangeError):
            memory.read_word(0x1000)

    def test_overlapping_range_rejected(self, memory):
        with pytest.raises(MemoryRangeError):
            memory.add_range(BASE + SIZE - 8, 64)

    def test_adjacent_range_allowed(self, memory):
        memory.add_range(BASE + SIZE, 4096)
        assert memory.contains(BASE + SIZE)

    def test_contains_boundaries(self, memory):
        assert memory.contains(BASE)
        assert memory.contains(BASE + SIZE - 8)
        assert not memory.contains(BASE + SIZE)
        assert not memory.contains(BASE - 8)

    def test_misaligned_base_rejected(self):
        mem = PhysicalMemory()
        with pytest.raises(AlignmentError):
            mem.add_range(0x1001, 4096)


class TestWordAccess:
    def test_unwritten_word_reads_zero(self, memory):
        assert memory.read_word(BASE + 0x100) == 0

    def test_write_read_roundtrip(self, memory):
        memory.write_word(BASE, 0xDEADBEEF)
        assert memory.read_word(BASE) == 0xDEADBEEF

    def test_value_truncated_to_64_bits(self, memory):
        memory.write_word(BASE, (1 << 70) | 5)
        assert memory.read_word(BASE) == 5

    def test_misaligned_access_rejected(self, memory):
        with pytest.raises(AlignmentError):
            memory.read_word(BASE + 4)
        with pytest.raises(AlignmentError):
            memory.write_word(BASE + 1, 0)

    def test_zero_write_keeps_store_sparse(self, memory):
        memory.write_word(BASE, 7)
        memory.write_word(BASE, 0)
        assert memory.population() == 0
        assert memory.read_word(BASE) == 0


class TestBulkHelpers:
    def test_fill_and_read_words(self, memory):
        memory.fill(BASE, 4, 0xAB)
        assert memory.read_words(BASE, 4) == [0xAB] * 4

    def test_copy_words(self, memory):
        for i in range(4):
            memory.write_word(BASE + i * 8, i + 1)
        memory.copy_words(BASE, BASE + 0x100, 4)
        assert memory.read_words(BASE + 0x100, 4) == [1, 2, 3, 4]


class TestPropertyBased:
    @settings(max_examples=50)
    @given(
        st.dictionaries(
            st.integers(0, SIZE // 8 - 1),
            st.integers(0, (1 << 64) - 1),
            max_size=64,
        )
    )
    def test_memory_behaves_like_a_dict(self, writes):
        """The store must agree with a reference model after any write set."""
        mem = PhysicalMemory()
        mem.add_range(BASE, SIZE)
        reference = {}
        for word_index, value in writes.items():
            mem.write_word(BASE + word_index * 8, value)
            reference[word_index] = value
        for word_index, value in reference.items():
            assert mem.read_word(BASE + word_index * 8) == value
