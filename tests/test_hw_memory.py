"""Unit tests for the sparse physical memory model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AlignmentError, MemoryRangeError
from repro.hw.memory import PhysicalMemory

BASE = 0x8000_0000
SIZE = 1 * 1024 * 1024


@pytest.fixture
def memory():
    mem = PhysicalMemory()
    mem.add_range(BASE, SIZE)
    return mem


class TestRanges:
    def test_unbacked_read_rejected(self, memory):
        with pytest.raises(MemoryRangeError):
            memory.read_word(0x1000)

    def test_overlapping_range_rejected(self, memory):
        with pytest.raises(MemoryRangeError):
            memory.add_range(BASE + SIZE - 8, 64)

    def test_adjacent_range_allowed(self, memory):
        memory.add_range(BASE + SIZE, 4096)
        assert memory.contains(BASE + SIZE)

    def test_contains_boundaries(self, memory):
        assert memory.contains(BASE)
        assert memory.contains(BASE + SIZE - 8)
        assert not memory.contains(BASE + SIZE)
        assert not memory.contains(BASE - 8)

    def test_misaligned_base_rejected(self):
        mem = PhysicalMemory()
        with pytest.raises(AlignmentError):
            mem.add_range(0x1001, 4096)


class TestWordAccess:
    def test_unwritten_word_reads_zero(self, memory):
        assert memory.read_word(BASE + 0x100) == 0

    def test_write_read_roundtrip(self, memory):
        memory.write_word(BASE, 0xDEADBEEF)
        assert memory.read_word(BASE) == 0xDEADBEEF

    def test_value_truncated_to_64_bits(self, memory):
        memory.write_word(BASE, (1 << 70) | 5)
        assert memory.read_word(BASE) == 5

    def test_misaligned_access_rejected(self, memory):
        with pytest.raises(AlignmentError):
            memory.read_word(BASE + 4)
        with pytest.raises(AlignmentError):
            memory.write_word(BASE + 1, 0)

    def test_zero_write_keeps_store_sparse(self, memory):
        memory.write_word(BASE, 7)
        memory.write_word(BASE, 0)
        assert memory.population() == 0
        assert memory.read_word(BASE) == 0


class TestBulkHelpers:
    def test_fill_and_read_words(self, memory):
        memory.fill(BASE, 4, 0xAB)
        assert memory.read_words(BASE, 4) == [0xAB] * 4

    def test_copy_words(self, memory):
        for i in range(4):
            memory.write_word(BASE + i * 8, i + 1)
        memory.copy_words(BASE, BASE + 0x100, 4)
        assert memory.read_words(BASE + 0x100, 4) == [1, 2, 3, 4]


class TestRangeIndex:
    """The bisect range index behind contains/check and the fast paths."""

    def test_overlap_rejected_among_many_ranges(self):
        mem = PhysicalMemory()
        for i in range(8):
            mem.add_range(0x1000_0000 * (i + 1), 0x10000)
        # Overlapping any of them (first, middle, last) is rejected.
        for base in (0x1000_0000, 0x4000_8000, 0x8000_fff8):
            with pytest.raises(MemoryRangeError):
                mem.add_range(base & ~7, 0x10000)
        # The index still resolves every installed range.
        for i in range(8):
            assert mem.contains(0x1000_0000 * (i + 1))
            assert not mem.contains(0x1000_0000 * (i + 1) + 0x10000)

    def test_ranges_stay_sorted_regardless_of_insert_order(self):
        mem = PhysicalMemory()
        for base in (0x3000_0000, 0x1000_0000, 0x2000_0000):
            mem.add_range(base, 0x1000)
        assert mem.ranges == [
            (0x1000_0000, 0x1000_1000),
            (0x2000_0000, 0x2000_1000),
            (0x3000_0000, 0x3000_1000),
        ]

    def test_last_range_cache_follows_alternating_accesses(self):
        mem = PhysicalMemory()
        mem.add_range(0x1000_0000, 0x1000)
        mem.add_range(0x2000_0000, 0x1000)
        for _ in range(3):
            mem.write_word(0x1000_0000, 1)
            mem.write_word(0x2000_0000, 2)
        assert mem.read_word(0x1000_0000) == 1
        assert mem.read_word(0x2000_0000) == 2
        with pytest.raises(MemoryRangeError):
            mem.read_word(0x1800_0000)


class TestChunkedBacking:
    def test_fill_across_chunk_boundary(self, memory):
        # 64 KB chunks: a run straddling the first boundary.
        start = BASE + 0x10000 - 8 * 4
        memory.fill(start, 8, 0x55)
        assert memory.read_words(start, 8) == [0x55] * 8
        assert memory.population() == 8

    def test_fill_zero_is_sparse_and_erases(self, memory):
        memory.fill(BASE, 2048, 0)          # never-written: allocates nothing
        assert memory.population() == 0
        memory.fill(BASE, 2048, 7)
        memory.fill(BASE, 2048, 0)
        assert memory.population() == 0
        assert memory.read_word(BASE + 8 * 1000) == 0

    def test_fill_spanning_adjacent_ranges(self, memory):
        memory.add_range(BASE + SIZE, 0x1000)
        start = BASE + SIZE - 8 * 2
        memory.fill(start, 4, 0xEE)
        assert memory.read_words(start, 4) == [0xEE] * 4

    def test_fill_past_end_of_backing_raises_after_writing(self, memory):
        start = BASE + SIZE - 8 * 2
        with pytest.raises(MemoryRangeError):
            memory.fill(start, 4, 0xAA)
        # The in-range prefix was written (same as the per-word original).
        assert memory.read_words(start, 2) == [0xAA, 0xAA]

    def test_copy_words_across_chunk_boundary(self, memory):
        src = BASE
        dst = BASE + 0x10000 - 8 * 2
        for i in range(4):
            memory.write_word(src + i * 8, i + 1)
        memory.copy_words(src, dst, 4)
        assert memory.read_words(dst, 4) == [1, 2, 3, 4]

    def test_copy_of_zeros_allocates_nothing(self, memory):
        memory.copy_words(BASE, BASE + 0x20000, 512)
        assert memory.population() == 0


class TestPropertyBased:
    @settings(max_examples=50)
    @given(
        st.dictionaries(
            st.integers(0, SIZE // 8 - 1),
            st.integers(0, (1 << 64) - 1),
            max_size=64,
        )
    )
    def test_memory_behaves_like_a_dict(self, writes):
        """The store must agree with a reference model after any write set."""
        mem = PhysicalMemory()
        mem.add_range(BASE, SIZE)
        reference = {}
        for word_index, value in writes.items():
            mem.write_word(BASE + word_index * 8, value)
            reference[word_index] = value
        for word_index, value in reference.items():
            assert mem.read_word(BASE + word_index * 8) == value
