"""Unit tests for Hypersec's policies (paper sections 5.2, 5.3, 6.1)."""

import pytest

from repro.config import PAGE_BYTES
from repro.errors import PermissionFault, SecurityViolation
from repro.core import hypercalls as hc
from repro.core.hypernel import build_hypernel
from repro.arch.pagetable import make_page_desc, make_table_desc
from repro.arch.registers import SCTLR_M
from repro.security import CredIntegrityMonitor


@pytest.fixture
def system(hypernel_system):
    hypernel_system.spawn_init()
    return hypernel_system


@pytest.fixture
def hypersec(system):
    return system.hypersec


@pytest.fixture
def kernel(system):
    return system.kernel


class TestInitialization:
    def test_el2_registers_configured(self, system):
        regs = system.cpu.regs
        assert regs.read("VBAR_EL2") != 0
        assert regs.read("SP_EL2") != 0
        assert regs.read("TTBR0_EL2") == system.platform.secure_base

    def test_tvm_enabled_after_protect(self, system):
        assert system.cpu.regs.tvm_enabled

    def test_stage2_stays_off(self, system):
        """The whole point: no nested paging."""
        assert not system.cpu.regs.stage2_enabled

    def test_double_protect_rejected(self, system, kernel):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            system.hypersec.protect(kernel)

    def test_linear_map_tables_are_read_only(self, system, kernel):
        table = next(iter(system.hypersec.linear_tables))
        with pytest.raises(PermissionFault):
            kernel.cpu.write(kernel.linear_map.kva(table), 0)


class TestPgtableWritePolicy:
    def _any_l3(self, kernel):
        mm = kernel.procs.current.mm
        return next(pa for path, pa in mm.tables.items() if len(path) == 2)

    def test_legit_update_accepted(self, kernel, hypersec):
        table = self._any_l3(kernel)
        frame = kernel.allocator.alloc("probe")
        desc = make_page_desc(frame, writable=True, user=True)
        result = kernel.cpu.hvc(hc.HVC_PGTABLE_WRITE, table + 100 * 8, desc, 3)
        assert result == hc.HVC_OK
        assert kernel.platform.bus.peek(table + 100 * 8) == desc

    def test_unregistered_target_denied(self, kernel, hypersec):
        rogue = kernel.allocator.alloc("attacker")
        result = kernel.cpu.hvc(
            hc.HVC_PGTABLE_WRITE, rogue, make_page_desc(rogue), 3
        )
        assert result == hc.HVC_DENIED
        assert hypersec.stats.get("alert.pgtable_target") == 1

    def test_secure_region_mapping_denied(self, kernel, hypersec, system):
        table = self._any_l3(kernel)
        desc = make_page_desc(system.platform.secure_base, writable=True)
        result = kernel.cpu.hvc(hc.HVC_PGTABLE_WRITE, table + 101 * 8, desc, 3)
        assert result == hc.HVC_DENIED
        assert hypersec.stats.get("alert.secure_mapping") == 1

    def test_writable_mapping_of_table_denied(self, kernel, hypersec):
        table = self._any_l3(kernel)
        other_table = next(iter(hypersec.table_pages))
        desc = make_page_desc(other_table, writable=True)
        result = kernel.cpu.hvc(hc.HVC_PGTABLE_WRITE, table + 102 * 8, desc, 3)
        assert result == hc.HVC_DENIED

    def test_readonly_mapping_of_table_allowed(self, kernel, hypersec):
        table = self._any_l3(kernel)
        other_table = next(iter(hypersec.table_pages))
        desc = make_page_desc(other_table, writable=False)
        result = kernel.cpu.hvc(hc.HVC_PGTABLE_WRITE, table + 103 * 8, desc, 3)
        assert result == hc.HVC_OK

    def test_w_xor_x_enforced(self, kernel, hypersec):
        table = self._any_l3(kernel)
        frame = kernel.allocator.alloc("probe")
        desc = make_page_desc(frame, writable=True, executable=True, user=False)
        result = kernel.cpu.hvc(hc.HVC_PGTABLE_WRITE, table + 104 * 8, desc, 3)
        assert result == hc.HVC_DENIED
        assert hypersec.stats.get("alert.w_xor_x") == 1

    def test_table_pointer_to_unregistered_page_denied(self, kernel, hypersec):
        root = kernel.procs.current.mm.pgd
        rogue = kernel.allocator.alloc("attacker")
        result = kernel.cpu.hvc(
            hc.HVC_PGTABLE_WRITE, root + 400 * 8, make_table_desc(rogue), 1
        )
        assert result == hc.HVC_DENIED


class TestTableLifecyclePolicy:
    def test_dirty_table_page_rejected(self, kernel, hypersec):
        page = kernel.allocator.alloc("pgtable")
        kernel.platform.bus.poke(page + 64, 0xBAD)
        result = kernel.cpu.hvc(hc.HVC_PGTABLE_ALLOC, page, 0)
        assert result == hc.HVC_DENIED
        assert hypersec.stats.get("alert.pgtable_alloc_dirty") == 1

    def test_registered_table_becomes_read_only_then_writable(self, kernel, hypersec):
        page = kernel.allocator.alloc("pgtable")
        kernel.platform.memory.fill(page, 512, 0)
        assert kernel.cpu.hvc(hc.HVC_PGTABLE_ALLOC, page, 0) == hc.HVC_OK
        with pytest.raises(PermissionFault):
            kernel.cpu.write(kernel.linear_map.kva(page), 1)
        assert kernel.cpu.hvc(hc.HVC_PGTABLE_FREE, page) == hc.HVC_OK
        kernel.cpu.write(kernel.linear_map.kva(page), 1)  # writable again

    def test_duplicate_registration_denied(self, kernel, hypersec):
        table = next(iter(hypersec.table_pages))
        assert kernel.cpu.hvc(hc.HVC_PGTABLE_ALLOC, table, 0) == hc.HVC_DENIED

    def test_free_of_unknown_page_denied(self, kernel, hypersec):
        page = kernel.allocator.alloc("probe")
        assert kernel.cpu.hvc(hc.HVC_PGTABLE_FREE, page) == hc.HVC_DENIED


class TestTrappedRegisters:
    def test_legit_context_switch_allowed(self, kernel):
        init = kernel.procs.current
        child = kernel.procs.fork(init)
        kernel.procs.context_switch(child)
        kernel.procs.context_switch(init)

    def test_rogue_ttbr0_refused(self, kernel):
        rogue = kernel.allocator.alloc("attacker")
        with pytest.raises(SecurityViolation):
            kernel.cpu.msr("TTBR0_EL1", rogue)

    def test_rogue_ttbr1_refused(self, kernel):
        with pytest.raises(SecurityViolation):
            kernel.cpu.msr("TTBR1_EL1", kernel.allocator.alloc("attacker"))

    def test_ttbr1_reload_of_good_root_allowed(self, kernel, hypersec):
        kernel.cpu.msr("TTBR1_EL1", hypersec.kernel_root)

    def test_mmu_disable_refused(self, kernel):
        current = kernel.cpu.mrs("SCTLR_EL1")
        with pytest.raises(SecurityViolation):
            kernel.cpu.msr("SCTLR_EL1", current & ~SCTLR_M)

    def test_tcr_retune_refused(self, kernel):
        with pytest.raises(SecurityViolation):
            kernel.cpu.msr("TCR_EL1", 0xDEAD)


class TestMonitoringPath:
    @pytest.fixture
    def monitored(self, platform_config):
        system = build_hypernel(
            platform_config=platform_config,
            monitors=[CredIntegrityMonitor()],
        )
        system.spawn_init()
        return system

    def test_region_registered_on_cred_alloc(self, monitored):
        assert monitored.hypersec.stats.get("regions_registered") > 0
        assert monitored.hypersec.monitored_word_count() > 0

    def test_monitored_page_is_uncacheable(self, monitored):
        kernel = monitored.kernel
        init = kernel.procs.current
        result = kernel.cpu.mmu.translate(kernel.linear_map.kva(init.cred_pa))
        assert not result.cacheable

    def test_region_unregistered_on_free(self, monitored):
        kernel = monitored.kernel
        init = kernel.procs.current
        words_before = monitored.hypersec.monitored_word_count()
        child = kernel.procs.fork(init)
        assert monitored.hypersec.monitored_word_count() > words_before
        kernel.procs.context_switch(child)
        kernel.procs.exit(child)
        kernel.procs.context_switch(init)
        assert monitored.hypersec.monitored_word_count() == words_before

    def test_cacheability_restored_when_last_region_leaves(self, monitored):
        kernel = monitored.kernel
        init = kernel.procs.current
        child = kernel.procs.fork(init)
        cred_page = child.cred_pa & ~(PAGE_BYTES - 1)
        kernel.procs.context_switch(child)
        kernel.procs.exit(child)
        kernel.procs.context_switch(init)
        refs = monitored.hypersec._monitored_page_refs.get(cred_page, 0)
        result = kernel.cpu.mmu.translate(kernel.linear_map.kva(cred_page))
        assert result.cacheable == (refs == 0)

    def test_event_dispatched_to_app(self, monitored):
        kernel = monitored.kernel
        init = kernel.procs.current
        app = monitored.monitor_by_name("cred_monitor")
        events_before = app.event_count
        kernel.sys.setuid(init, 1000)
        assert app.event_count >= events_before + 4
        assert not app.alerts  # announced updates raise no alarm

    def test_register_region_rejects_unknown_sid(self, monitored):
        kernel = monitored.kernel
        result = kernel.cpu.hvc(
            hc.HVC_REGISTER_REGION, 999,
            kernel.linear_map.kva(kernel.platform.config.dram_base), 64,
        )
        assert result == hc.HVC_DENIED

    def test_register_region_rejects_secure_target(self, monitored):
        kernel = monitored.kernel
        app = monitored.monitors[0]
        secure_kva = kernel.linear_map.kva(monitored.platform.secure_base)
        result = kernel.cpu.hvc(hc.HVC_REGISTER_REGION, app.sid, secure_kva, 64)
        assert result == hc.HVC_DENIED


class TestEmulatedWrites:
    def test_emulate_rejects_table_target(self, kernel, hypersec):
        table = next(iter(hypersec.table_pages))
        result = kernel.cpu.hvc(hc.HVC_EMULATE_WRITE, table + 8, 0xBAD)
        assert result == hc.HVC_DENIED

    def test_emulate_rejects_secure_target(self, kernel, hypersec, system):
        result = kernel.cpu.hvc(
            hc.HVC_EMULATE_WRITE, system.platform.secure_base + 64, 1
        )
        assert result == hc.HVC_DENIED

    def test_emulate_performs_benign_write(self, kernel, hypersec):
        frame = kernel.allocator.alloc("probe")
        result = kernel.cpu.hvc(hc.HVC_EMULATE_WRITE, frame + 16, 0x77)
        assert result == hc.HVC_OK
        assert kernel.platform.bus.peek(frame + 16) == 0x77

    def test_unknown_hypercall_denied(self, kernel, hypersec):
        assert kernel.cpu.hvc(0x7777) == hc.HVC_DENIED
        assert hypersec.stats.get("alert.unknown_hypercall") == 1
