"""Regression tests for policy holes flushed out by the hypercall fuzzer.

Every test here fails on the pre-fix Hypersec/auditor code (ISSUE 10):

* **block-span unmap** — ``_check_unmap`` only inspected the first 4 KiB
  of the old mapping regardless of descriptor level, so invalidating a
  2 MB linear-map section that covers a monitored region beyond its
  first page sailed through;
* **old table-pointer blind spots** — the ``_check_leaf`` precedence
  chain skipped every old-descriptor check when the *old* descriptor
  was a table pointer (or the *new* one was), so monitored mappings
  could be redirected by installing a table over a block, a block over
  a table, or by simply zapping the table pointer;
* **free-while-referenced** — ``pgtable_free`` happily released a table
  page still reachable from a live tree (including the kernel root
  itself), flipping its linear mapping back to writable and re-opening
  the direct descriptor-write path Hypersec exists to close;
* **register-region bounds** — monitored regions outside the MBM bitmap
  coverage produced out-of-range bitmap stores into secure memory;
* **hostile hypercall arguments** — unbacked physical addresses or a
  wrong argument count crashed EL2 (``MemoryRangeError``/``TypeError``)
  instead of returning ``HVC_DENIED``;
* **auditor walk hardening** — a poisoned table pointer aimed off the
  end of RAM blew up the invariant auditor instead of being reported;
* **region lifecycle** — unregistering a never-registered range (or
  double-registering then unregistering one copy) cleared live bitmap
  bits and shared page refcounts: an accepted hypercall that left the
  audit dirty.
"""

import pytest

from repro.config import PAGE_BYTES, PAGE_WORDS, SECTION_BYTES
from repro.core import hypercalls as hc
from repro.core.hypernel import build_hypernel
from repro.kernel.kernel import KernelConfig
from repro.arch.pagetable import (
    KERNEL_VA_BASE,
    index_for_level,
    make_block_desc,
    make_table_desc,
)
from repro.security import CredIntegrityMonitor, DentryIntegrityMonitor
from repro.utils.bitops import align_down

from tests.conftest import small_platform_config


@pytest.fixture
def section_system():
    """Monitored Hypernel with the vanilla 2 MB-section linear map."""
    system = build_hypernel(
        platform_config=small_platform_config(),
        kernel_config=KernelConfig(linear_map_mode="section"),
        monitors=[CredIntegrityMonitor(), DentryIntegrityMonitor()],
    )
    system.spawn_init()
    return system


@pytest.fixture
def page_system():
    """Monitored Hypernel with the 4 KB page-mode linear map."""
    system = build_hypernel(
        platform_config=small_platform_config(),
        kernel_config=KernelConfig(linear_map_mode="page"),
        monitors=[CredIntegrityMonitor(), DentryIntegrityMonitor()],
    )
    system.spawn_init()
    return system


def _monitored_off_section_page(system):
    """A monitored page that is not the first page of its 2 MB section
    (the pre-fix ``_check_unmap`` only ever looked at the first page)."""
    for page in sorted(system.hypersec._monitored_page_refs):
        if page != align_down(page, SECTION_BYTES):
            return page
    pytest.skip("no monitored page beyond a section base in this layout")


def _kernel_l2_slot(system, paddr):
    """Walk the live kernel tree for the L2 slot covering ``paddr``'s
    linear mapping (page mode: the slot holds an L3 table pointer)."""
    bus = system.platform.bus
    root = system.hypersec.kernel_root & ~(PAGE_BYTES - 1)
    offset = system.kernel.linear_map.kva(paddr) - KERNEL_VA_BASE
    l1_raw = bus.peek(root + index_for_level(offset, 1) * 8)
    l2_table = l1_raw & ~(PAGE_BYTES - 1) & ((1 << 48) - 1)
    return l2_table + index_for_level(offset, 2) * 8


def _registered_empty_table(system):
    """Allocate, zero and register a fresh table page via the hypercall."""
    frame = system.kernel.allocator.alloc("attacker")
    system.platform.memory.fill(frame, PAGE_WORDS, 0)
    assert system.kernel.cpu.hvc(hc.HVC_PGTABLE_ALLOC, frame, 0) == hc.HVC_OK
    return frame


class TestBlockSpanUnmap:
    def test_unmap_of_section_covering_monitored_page_denied(
        self, section_system
    ):
        """Bug A: invalidating a 2 MB block must honour the whole span."""
        system = section_system
        page = _monitored_off_section_page(system)
        desc_addr, level = system.kernel.linear_map.leaf_desc_addr(page)
        assert level == 2  # a real 2 MB section leaf
        before = system.platform.bus.peek(desc_addr)
        result = system.kernel.cpu.hvc(
            hc.HVC_PGTABLE_WRITE, desc_addr, 0, level
        )
        assert result == hc.HVC_DENIED
        assert system.platform.bus.peek(desc_addr) == before
        assert system.hypersec.stats.snapshot().get(
            "alert.monitored_unmap", 0
        ) > 0

    def test_unmap_of_unmonitored_page_leaf_still_allowed(self, page_system):
        """The fix must not overblock: a page-mode leaf for a plain
        kernel page (not monitored, not a linear redirect) unmaps fine
        from a process tree."""
        system = page_system
        kernel = system.kernel
        mm = kernel.procs.current.mm
        l3 = next(pa for path, pa in mm.tables.items() if len(path) == 2)
        # A slot we know holds a user leaf: take any valid one.
        for index in range(512):
            raw = system.platform.bus.peek(l3 + index * 8)
            if raw & 1:
                result = kernel.cpu.hvc(
                    hc.HVC_PGTABLE_WRITE, l3 + index * 8, 0, 3
                )
                assert result == hc.HVC_OK
                return
        pytest.skip("no valid leaf in the first process L3 table")


class TestOldTablePointerBlindSpots:
    def test_table_install_over_monitored_section_denied(
        self, section_system
    ):
        """Bug B1: replacing a monitored 2 MB block leaf with a pointer
        to a (registered, empty) table silently unmaps the region."""
        system = section_system
        page = _monitored_off_section_page(system)
        desc_addr, level = system.kernel.linear_map.leaf_desc_addr(page)
        assert level == 2
        rogue_table = _registered_empty_table(system)
        result = system.kernel.cpu.hvc(
            hc.HVC_PGTABLE_WRITE, desc_addr, make_table_desc(rogue_table),
            level,
        )
        assert result == hc.HVC_DENIED

    def test_block_install_over_kernel_table_pointer_denied(
        self, page_system
    ):
        """Bug B2: overwriting the L2 table pointer that reaches a
        monitored page with a block descriptor redirects the mapping."""
        system = page_system
        page = next(iter(sorted(system.hypersec._monitored_page_refs)))
        l2_slot = _kernel_l2_slot(system, page)
        target = align_down(
            system.platform.secure_base - 2 * SECTION_BYTES, SECTION_BYTES
        )
        rogue = make_block_desc(target, writable=False, executable=False)
        result = system.kernel.cpu.hvc(
            hc.HVC_PGTABLE_WRITE, l2_slot, rogue, 2
        )
        assert result == hc.HVC_DENIED

    def test_invalidate_kernel_table_pointer_denied(self, page_system):
        """Bug B3: zapping the table pointer unmaps the whole subtree,
        monitored pages included."""
        system = page_system
        page = next(iter(sorted(system.hypersec._monitored_page_refs)))
        l2_slot = _kernel_l2_slot(system, page)
        result = system.kernel.cpu.hvc(hc.HVC_PGTABLE_WRITE, l2_slot, 0, 2)
        assert result == hc.HVC_DENIED

    def test_attribute_only_rewrite_still_allowed(self, page_system):
        """Parenthesization guard: rewriting a leaf with the same output
        address (attribute-only change) must stay legal."""
        system = page_system
        kernel = system.kernel
        mm = kernel.procs.current.mm
        l3 = next(pa for path, pa in mm.tables.items() if len(path) == 2)
        for index in range(512):
            raw = system.platform.bus.peek(l3 + index * 8)
            if raw & 1:
                result = kernel.cpu.hvc(
                    hc.HVC_PGTABLE_WRITE, l3 + index * 8, raw, 3
                )
                assert result == hc.HVC_OK
                return
        pytest.skip("no valid leaf in the first process L3 table")


class TestFreeWhileReferenced:
    def test_free_of_live_process_table_denied(self, section_system):
        """Bug D: a table still referenced by a live tree cannot be
        freed (its linear mapping would become writable again)."""
        system = section_system
        mm = system.kernel.procs.current.mm
        l3 = next(pa for path, pa in mm.tables.items() if len(path) == 2)
        result = system.kernel.cpu.hvc(hc.HVC_PGTABLE_FREE, l3)
        assert result == hc.HVC_DENIED
        assert l3 in system.hypersec.table_pages

    def test_free_of_kernel_root_denied(self, section_system):
        system = section_system
        root = system.hypersec.kernel_root & ~(PAGE_BYTES - 1)
        result = system.kernel.cpu.hvc(hc.HVC_PGTABLE_FREE, root)
        assert result == hc.HVC_DENIED
        assert root in system.hypersec.table_pages

    def test_legitimate_teardown_still_works(self, section_system):
        """fork/exec/exit must still tear down cleanly under the
        stricter free policy (children are unlinked before freeing)."""
        system = section_system
        kernel = system.kernel
        init = kernel.procs.current
        tables_before = set(system.hypersec.table_pages)
        child = kernel.sys.fork(init)
        kernel.procs.context_switch(child)
        kernel.sys.execv(child)
        kernel.sys.exit(child)
        kernel.procs.context_switch(init)
        kernel.sys.wait(init)
        assert system.hypersec.table_pages == tables_before
        report = system.hypersec.audit()
        assert report.clean, str(report)

    def test_free_of_populated_table_denied(self, section_system):
        """Bug D (fuzzer find): freeing a table that still holds live
        descriptors leaked its children's refcounts and left the linked
        subtree registered but unreachable forever."""
        system = section_system
        bus = system.platform.bus
        # Build under the process root: the boot linear tables are
        # write-once for valid slots (the linear-remap guard also
        # covers unmaps), but process trees allow teardown.
        pgd = system.kernel.procs.current.mm.pgd
        slot = next(
            pgd + index * 8 for index in range(PAGE_WORDS)
            if bus.peek(pgd + index * 8) == 0
        )
        outer = _registered_empty_table(system)
        inner = _registered_empty_table(system)
        hvc = system.kernel.cpu.hvc
        assert hvc(hc.HVC_PGTABLE_WRITE, slot,
                   make_table_desc(outer), 1) == hc.HVC_OK
        assert hvc(hc.HVC_PGTABLE_WRITE, outer + 7 * 8,
                   make_table_desc(inner), 2) == hc.HVC_OK
        # Unlink the pair from the root, leaving outer -> inner intact.
        assert hvc(hc.HVC_PGTABLE_WRITE, slot, 0, 1) == hc.HVC_OK
        # Pre-fix this free succeeded, stranding `inner` with a stale
        # reference count nobody could ever drop.
        assert hvc(hc.HVC_PGTABLE_FREE, outer) == hc.HVC_DENIED
        assert outer in system.hypersec.table_pages
        # Emptying the table first makes the same free legitimate.
        assert hvc(hc.HVC_PGTABLE_WRITE, outer + 7 * 8, 0, 2) == hc.HVC_OK
        assert hvc(hc.HVC_PGTABLE_FREE, outer) == hc.HVC_OK
        assert hvc(hc.HVC_PGTABLE_FREE, inner) == hc.HVC_OK
        report = system.hypersec.audit()
        assert report.clean, str(report)


class TestRegisterRegionBounds:
    def test_register_outside_bitmap_coverage_denied(self, section_system):
        """Bug E: a region beyond the MBM's covered range must be
        refused, not written into out-of-range bitmap words."""
        system = section_system
        sid = system.monitors[0].sid
        config = system.platform.config
        rogue_kva = system.kernel.linear_map.kva(
            config.dram_base + config.dram_bytes
        )
        result = system.kernel.cpu.hvc(
            hc.HVC_REGISTER_REGION, sid, rogue_kva, 64
        )
        assert result == hc.HVC_DENIED
        report = system.hypersec.audit()
        assert report.clean, str(report)

    def test_register_empty_range_denied(self, section_system):
        system = section_system
        sid = system.monitors[0].sid
        kva = system.kernel.linear_map.kva(system.platform.config.dram_base)
        assert system.kernel.cpu.hvc(
            hc.HVC_REGISTER_REGION, sid, kva, 0
        ) == hc.HVC_DENIED

    def test_unregister_outside_coverage_denied(self, section_system):
        system = section_system
        sid = system.monitors[0].sid
        config = system.platform.config
        rogue_kva = system.kernel.linear_map.kva(
            config.dram_base + config.dram_bytes + PAGE_BYTES
        )
        assert system.kernel.cpu.hvc(
            hc.HVC_UNREGISTER_REGION, sid, rogue_kva, 64
        ) == hc.HVC_DENIED


class TestRegionLifecycleIntegrity:
    """Bug G (fuzzer find): unregistering a range that was never
    registered cleared live bitmap bits and dropped shared page
    refcounts — an *accepted* hypercall that left the audit dirty."""

    @staticmethod
    def _live_region(system):
        """A (base_pa, end_pa, sid) triple some monitor registered."""
        for ranges in system.hypersec._region_index.values():
            for triple in ranges:
                return triple
        pytest.skip("no registered regions in this layout")

    def test_unregister_of_unknown_range_is_denied(self, page_system):
        system = page_system
        base_pa, end_pa, sid = self._live_region(system)
        # A sub-range of a live region: never registered as a triple,
        # but its bitmap bits belong to the real region.
        rogue_kva = system.kernel.linear_map.kva(base_pa)
        assert system.kernel.cpu.hvc(
            hc.HVC_UNREGISTER_REGION, sid, rogue_kva, 8
        ) == hc.HVC_DENIED
        report = system.hypersec.audit()
        assert report.clean, str(report)

    def test_duplicate_registration_is_denied(self, page_system):
        """Registering an identical triple twice would let a single
        unregister clear bits the surviving copy still needs."""
        system = page_system
        base_pa, end_pa, sid = self._live_region(system)
        kva = system.kernel.linear_map.kva(base_pa)
        assert system.kernel.cpu.hvc(
            hc.HVC_REGISTER_REGION, sid, kva, end_pa - base_pa
        ) == hc.HVC_DENIED
        report = system.hypersec.audit()
        assert report.clean, str(report)

    def test_unregister_preserves_bits_of_overlapping_region(
        self, page_system
    ):
        """Bug I (fuzzer find): two distinct regions may claim the same
        bitmap bits; unregistering one cleared the bits the survivor
        still relies on — accepted hypercalls, dirty bitmap audit."""
        system = page_system
        sid = system.monitors[0].sid
        page = system.kernel.allocator.alloc("overlap_test")
        kva = system.kernel.linear_map.kva(page)
        hvc = system.kernel.cpu.hvc
        assert hvc(hc.HVC_REGISTER_REGION, sid, kva, 64) == hc.HVC_OK
        assert hvc(hc.HVC_REGISTER_REGION, sid, kva + 8, 8) == hc.HVC_OK
        assert hvc(hc.HVC_UNREGISTER_REGION, sid, kva, 64) == hc.HVC_OK
        report = system.hypersec.audit()
        assert report.clean, str(report)
        assert hvc(hc.HVC_UNREGISTER_REGION, sid, kva + 8, 8) == hc.HVC_OK
        report = system.hypersec.audit()
        assert report.clean, str(report)

    def test_unregister_near_monitored_page_keeps_section_uncached(
        self, section_system
    ):
        """Bug H (fuzzer find): in section mode the cacheability leaf is
        shared by the whole 2 MB block; unregistering a region restored
        the block cacheable even while another page under it was still
        monitored — the MBM silently went blind."""
        system = section_system
        h = system.hypersec
        target = None
        for monitored in sorted(h._monitored_page_refs):
            section = align_down(monitored, SECTION_BYTES)
            for cand in range(section, section + SECTION_BYTES, PAGE_BYTES):
                if (cand not in h._monitored_page_refs
                        and system.mbm.bitmap.covers(cand)
                        and system.mbm.bitmap.covers(cand + PAGE_BYTES - 1)):
                    target = cand
                    break
            if target is not None:
                break
        assert target is not None, "no unmonitored page shares a section"
        sid = system.monitors[0].sid
        kva = system.kernel.linear_map.kva(target)
        hvc = system.kernel.cpu.hvc
        assert hvc(hc.HVC_REGISTER_REGION, sid, kva, 64) == hc.HVC_OK
        assert hvc(hc.HVC_UNREGISTER_REGION, sid, kva, 64) == hc.HVC_OK
        report = system.hypersec.audit()
        assert report.clean, str(report)

    def test_unregister_then_reregister_cycle_stays_clean(self, page_system):
        """The legitimate lifecycle (exact-triple unregister, then a
        fresh registration) must survive the new guards."""
        system = page_system
        base_pa, end_pa, sid = self._live_region(system)
        kva = system.kernel.linear_map.kva(base_pa)
        size = end_pa - base_pa
        assert system.kernel.cpu.hvc(
            hc.HVC_UNREGISTER_REGION, sid, kva, size
        ) == hc.HVC_OK
        assert system.kernel.cpu.hvc(
            hc.HVC_REGISTER_REGION, sid, kva, size
        ) == hc.HVC_OK
        report = system.hypersec.audit()
        assert report.clean, str(report)


class TestHostileHypercallArguments:
    """Bug F: malformed arguments must be denied, never crash EL2."""

    def test_emulate_write_to_unbacked_address_denied(self, section_system):
        system = section_system
        config = system.platform.config
        off_ram = config.dram_base + config.dram_bytes + 64
        result = system.kernel.cpu.hvc(hc.HVC_EMULATE_WRITE, off_ram, 1)
        assert result == hc.HVC_DENIED

    def test_emulate_write_block_past_ram_denied(self, section_system):
        system = section_system
        config = system.platform.config
        off_ram = config.dram_base + config.dram_bytes
        result = system.kernel.cpu.hvc(
            hc.HVC_EMULATE_WRITE_BLOCK, off_ram, 4 * PAGE_WORDS
        )
        assert result == hc.HVC_DENIED

    def test_emulate_write_block_nonpositive_count_denied(
        self, section_system
    ):
        system = section_system
        base = system.platform.config.dram_base
        assert system.kernel.cpu.hvc(
            hc.HVC_EMULATE_WRITE_BLOCK, base, 0
        ) == hc.HVC_DENIED

    def test_alloc_of_unbacked_page_denied(self, section_system):
        system = section_system
        config = system.platform.config
        off_ram = config.dram_base + config.dram_bytes + PAGE_BYTES
        result = system.kernel.cpu.hvc(hc.HVC_PGTABLE_ALLOC, off_ram, 0)
        assert result == hc.HVC_DENIED

    def test_misaligned_descriptor_address_denied(self, section_system):
        system = section_system
        table = next(iter(sorted(system.hypersec.table_pages)))
        result = system.kernel.cpu.hvc(hc.HVC_PGTABLE_WRITE, table + 3, 0, 3)
        assert result == hc.HVC_DENIED

    def test_wrong_arity_denied(self, section_system):
        system = section_system
        assert system.kernel.cpu.hvc(
            hc.HVC_PGTABLE_WRITE, 0x1000
        ) == hc.HVC_DENIED
        assert system.kernel.cpu.hvc(hc.HVC_PGTABLE_FREE) == hc.HVC_DENIED
        assert system.kernel.cpu.hvc(
            hc.HVC_REGISTER_REGION, 1, 2, 3, 4
        ) == hc.HVC_DENIED


class TestAuditorWalkHardening:
    def test_table_pointer_off_ram_is_a_finding_not_a_crash(
        self, section_system
    ):
        """Bug C: a poisoned table pointer past the end of RAM must
        yield a TABLE_TOPOLOGY finding and a truncated-walk count."""
        system = section_system
        config = system.platform.config
        root = system.hypersec.kernel_root & ~(PAGE_BYTES - 1)
        off_ram = config.dram_base + config.dram_bytes + PAGE_BYTES
        system.platform.bus.poke(root + 450 * 8, make_table_desc(off_ram))
        report = system.hypersec.audit()
        assert any(f.invariant == "TABLE_TOPOLOGY" for f in report.findings)
        assert report.truncated_walks >= 1

    def test_table_pointer_into_secure_region_is_a_finding(
        self, section_system
    ):
        system = section_system
        root = system.hypersec.kernel_root & ~(PAGE_BYTES - 1)
        system.platform.bus.poke(
            root + 451 * 8, make_table_desc(system.platform.secure_base)
        )
        report = system.hypersec.audit()
        assert any(
            f.invariant == "TABLE_TOPOLOGY"
            and "secure" in f.detail
            for f in report.findings
        )
        assert report.truncated_walks >= 1
