"""Unit tests for the KVM-style hypervisor (nested paging baseline)."""

import pytest

from repro.config import PAGE_BYTES
from repro.errors import SecurityViolation


@pytest.fixture
def system(kvm_system):
    kvm_system.spawn_init()
    return kvm_system


class TestStage2DemandFaulting:
    def test_kernel_runs_under_nested_paging(self, system):
        assert system.cpu.regs.stage2_enabled
        assert system.kvm.stats.get("stage2_faults") > 0

    def test_faulted_pages_are_identity_mapped(self, system):
        kernel = system.kernel
        paddr = kernel.allocator.alloc("test")
        kva = kernel.linear_map.kva(paddr)
        kernel.cpu.write(kva, 0xCAFE)
        assert kernel.cpu.read(kva) == 0xCAFE
        assert system.platform.bus.peek(paddr) == 0xCAFE

    def test_second_touch_takes_no_exit(self, system):
        kernel = system.kernel
        paddr = kernel.allocator.alloc("test")
        kva = kernel.linear_map.kva(paddr)
        kernel.cpu.write(kva, 1)
        exits = system.cpu.stats.get("vm_exits")
        kernel.cpu.write(kva, 2)
        kernel.cpu.read(kva)
        assert system.cpu.stats.get("vm_exits") == exits

    def test_guest_cannot_reach_host_memory(self, system):
        """An IPA outside the guest's range is refused by KVM."""
        from repro.errors import Stage2Fault
        from repro.hypervisor.kvm import KvmHypervisor

        with pytest.raises(SecurityViolation):
            system.kvm.handle_stage2_fault(
                system.cpu,
                Stage2Fault("test", ipa=system.platform.secure_base, is_write=True),
            )

    def test_prepopulate_removes_faults(self, platform_config):
        from repro.core.hypernel import build_kvm_guest

        system = build_kvm_guest(
            platform_config=platform_config, prepopulate_stage2=True
        )
        faults_before = system.kvm.stats.get("stage2_faults")
        system.spawn_init()
        assert system.kvm.stats.get("stage2_faults") == faults_before


class TestNestedWalkCost:
    def test_nested_walks_fetch_more_descriptors(self, system, native_system):
        native_system.spawn_init()
        for sys_handle in (system, native_system):
            kernel = sys_handle.kernel
            # Touch a fresh page through a cold TLB.
            paddr = kernel.allocator.alloc("probe")
            sys_handle.cpu.tlbi_all()
            kernel.cpu.read(kernel.linear_map.kva(paddr))
        native_fetches = native_system.cpu.mmu.stats.get("stage2_desc_fetches")
        kvm_fetches = system.cpu.mmu.stats.get("stage2_desc_fetches")
        assert native_fetches == 0
        assert kvm_fetches > 0

    def test_fork_slower_than_native(self, system, native_system):
        results = {}
        for sys_handle in (system, native_system):
            kernel = sys_handle.kernel
            if kernel.procs.current is None:
                sys_handle.spawn_init()
            init = kernel.procs.current

            def cycle():
                child = kernel.sys.fork(init)
                kernel.procs.context_switch(child)
                kernel.sys.exit(child)
                kernel.procs.context_switch(init)
                kernel.sys.wait(init)

            for _ in range(3):
                cycle()
            start = sys_handle.now
            for _ in range(5):
                cycle()
            results[sys_handle.name] = sys_handle.now - start
        assert results["kvm-guest"] > results["native"]


class TestTrapHandling:
    def test_msr_not_trapped_under_kvm(self, system):
        """KVM does not set TVM: the guest manages its own tables."""
        exits = system.kvm.stats.get("trapped_msr")
        system.cpu.msr("TTBR0_EL1", system.kernel.procs.current.mm.pgd)
        assert system.kvm.stats.get("trapped_msr") == exits

    def test_guest_hvc_is_absorbed(self, system):
        assert system.cpu.hvc(0x84000000) == 0  # PSCI-style call
        assert system.kvm.stats.get("hvc") == 1


class TestHostTableManagement:
    def test_stage2_tables_live_in_host_memory(self, system):
        assert system.kvm.s2_root >= system.platform.secure_base

    def test_map_ipa_rejects_when_out_of_table_memory(self, platform_config):
        from repro.hw.platform import Platform
        from repro.arch.cpu import CPUCore
        from repro.hypervisor.kvm import KvmHypervisor
        from repro.errors import AllocationError

        platform = Platform(platform_config)
        cpu = CPUCore(platform)
        kvm = KvmHypervisor(platform, cpu)
        kvm.install()
        kvm._table_limit = kvm._table_cursor  # exhaust artificially
        with pytest.raises(AllocationError):
            kvm.map_ipa(platform.config.dram_base + 123 * PAGE_BYTES)
