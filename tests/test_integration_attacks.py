"""Integration tests: the attack/protection matrix (DESIGN.md section 4).

Each scenario runs against Native (undefended), Hypernel (Hypersec +
MBM + monitors) and — for ATRA — a stand-alone external monitor, and
asserts the outcomes the paper claims.
"""

import pytest

from repro.config import PAGE_BYTES
from repro.core.hypernel import build_hypernel, build_native
from repro.core.mbm.mbm import MemoryBusMonitor
from repro.kernel.kernel import KernelConfig
from repro.kernel.objects import CRED
from repro.arch.pagetable import DESC_NC
from repro.security import (
    CredIntegrityMonitor,
    DentryIntegrityMonitor,
    ExternalOnlyMonitor,
)
from repro.attacks import (
    AtraAttack,
    CredEscalationAttack,
    DentryHijackAttack,
    DmaAttack,
    HypercallAbuseAttack,
    MmuDisableAttack,
    PageTableTamperAttack,
    TtbrSwitchAttack,
)
from repro.hw.dma import Iommu
from repro.utils.bitops import align_down
from tests.conftest import small_platform_config


def make_victim(system):
    """A non-root victim process (so escalation is observable)."""
    kernel = system.kernel
    init = system.spawn_init()
    victim = kernel.sys.fork(init)
    kernel.procs.context_switch(victim)
    kernel.sys.setuid(victim, 1000)
    kernel.vfs.mkdir_p("/etc")
    kernel.sys.creat(victim, "/etc/passwd")
    return victim


@pytest.fixture
def native():
    return build_native(
        platform_config=small_platform_config(),
        kernel_config=KernelConfig(linear_map_mode="page"),
    )


@pytest.fixture
def hypernel():
    return build_hypernel(
        platform_config=small_platform_config(),
        monitors=[CredIntegrityMonitor(), DentryIntegrityMonitor()],
    )


class TestNativeIsDefenceless:
    def test_cred_escalation_succeeds_silently(self, native):
        victim = make_victim(native)
        outcome = CredEscalationAttack().mount(native, victim)
        assert outcome.succeeded and not outcome.detected

    def test_dentry_hijack_succeeds_silently(self, native):
        make_victim(native)
        outcome = DentryHijackAttack().mount(native, "/etc/passwd")
        assert outcome.succeeded and not outcome.detected

    def test_pgtable_tamper_succeeds(self, native):
        make_victim(native)
        outcome = PageTableTamperAttack().mount(native)
        assert outcome.succeeded and not outcome.blocked

    def test_ttbr_switch_succeeds(self, native):
        make_victim(native)
        outcome = TtbrSwitchAttack().mount(native)
        assert outcome.succeeded

    def test_mmu_disable_succeeds(self, native):
        make_victim(native)
        outcome = MmuDisableAttack().mount(native)
        assert outcome.succeeded


class TestHypernelProtects:
    def test_cred_escalation_detected(self, hypernel):
        victim = make_victim(hypernel)
        outcome = CredEscalationAttack().mount(hypernel, victim)
        assert outcome.succeeded  # monitoring detects, does not prevent
        assert outcome.detected
        app = hypernel.monitor_by_name("cred_monitor")
        assert any("escalation" in alert.reason for alert in app.alerts)

    def test_dentry_hijack_detected(self, hypernel):
        make_victim(hypernel)
        outcome = DentryHijackAttack().mount(hypernel, "/etc/passwd")
        assert outcome.detected

    def test_pgtable_tamper_blocked(self, hypernel):
        make_victim(hypernel)
        outcome = PageTableTamperAttack().mount(hypernel)
        assert outcome.blocked and not outcome.succeeded

    def test_ttbr_switch_blocked(self, hypernel):
        make_victim(hypernel)
        outcome = TtbrSwitchAttack().mount(hypernel)
        assert outcome.blocked and not outcome.succeeded

    def test_mmu_disable_blocked(self, hypernel):
        make_victim(hypernel)
        outcome = MmuDisableAttack().mount(hypernel)
        assert outcome.blocked and not outcome.succeeded

    def test_hypercall_abuse_blocked(self, hypernel):
        make_victim(hypernel)
        outcome = HypercallAbuseAttack().mount(hypernel)
        assert outcome.blocked and not outcome.succeeded

    def test_atra_blocked(self, hypernel):
        victim = make_victim(hypernel)
        outcome = AtraAttack().mount(hypernel, victim)
        assert outcome.blocked and not outcome.succeeded
        assert hypernel.hypersec.stats.get("alert.atra_remap") >= 1


class TestExternalMonitorAtraBypass:
    """Paper sections 2/5.3: ATRA defeats bus monitors without Hypersec."""

    def _external_setup(self):
        system = build_native(
            platform_config=small_platform_config(),
            kernel_config=KernelConfig(linear_map_mode="page"),
        )
        mbm = MemoryBusMonitor(system.platform, raise_interrupts=False)
        mbm.attach()
        system.mbm = mbm
        victim = make_victim(system)
        monitor = ExternalOnlyMonitor(mbm)
        for base, size in CRED.sensitive_ranges(victim.cred_pa):
            monitor.watch_range(base, size)
        # Boot-time integration made the watched page uncacheable.
        page = align_down(victim.cred_pa, PAGE_BYTES)
        desc_addr, _ = system.kernel.linear_map.leaf_desc_addr(page)
        system.platform.bus.poke(
            desc_addr, system.platform.bus.peek(desc_addr) | DESC_NC
        )
        system.cpu.tlbi_all()
        return system, victim, monitor

    def test_external_monitor_catches_direct_writes(self):
        system, victim, monitor = self._external_setup()
        CredEscalationAttack().mount(system, victim)
        monitor.poll()
        assert len(monitor.alerts) >= 1

    def test_atra_bypasses_external_monitor(self):
        system, victim, monitor = self._external_setup()
        outcome = AtraAttack().mount(system, victim)
        monitor.poll()
        assert outcome.succeeded            # kernel sees uid 0 ...
        assert len(monitor.alerts) == 0     # ... and the monitor saw nothing
        # The monitor still believes the victim is uid 1000.
        uid_pa = victim.cred_pa + CRED.field("uid").byte_offset
        assert monitor.shadow_value(uid_pa) == 1000


class TestDmaAttack:
    def test_dma_write_lands_but_is_flagged(self, hypernel):
        make_victim(hypernel)
        outcome = DmaAttack().mount(hypernel)
        assert outcome.succeeded
        assert outcome.detected

    def test_iommu_blocks_dma(self, hypernel):
        make_victim(hypernel)
        iommu = Iommu()  # no windows granted
        outcome = DmaAttack().mount(hypernel, iommu)
        assert outcome.blocked and not outcome.succeeded

    def test_iommu_allows_granted_windows(self, hypernel):
        kernel = hypernel.kernel
        make_victim(hypernel)
        iommu = Iommu()
        buffer_page = kernel.allocator.alloc("dma_buf")
        iommu.grant(buffer_page, PAGE_BYTES)
        from repro.hw.dma import DmaEngine
        engine = DmaEngine(hypernel.platform.bus, iommu)
        engine.write_word(buffer_page + 8, 0x1234)
        assert hypernel.platform.bus.peek(buffer_page + 8) == 0x1234
