"""Integration tests asserting the paper's result *shapes* on small runs.

These are the claims DESIGN.md section 5 commits to: orderings and
rough factors, not absolute numbers.  Full-size regenerations live in
``benchmarks/``.
"""

import pytest

from repro.analysis.figures import run_figure6
from repro.analysis.monitoring import run_table2
from repro.analysis.tables import run_table1
from repro.workloads.apps import ApacheWorkload, UntarWorkload
from tests.conftest import small_platform_config


@pytest.fixture(scope="module")
def table1():
    return run_table1(
        platform_factory=small_platform_config, warmup=3, iterations=6
    )


@pytest.fixture(scope="module")
def figure6():
    return run_figure6(scale=0.08, platform_factory=small_platform_config)


@pytest.fixture(scope="module")
def table2():
    return run_table2(scale=0.08, platform_factory=small_platform_config)


class TestTable1Shape:
    def test_every_cell_positive(self, table1):
        for op, row in table1.rows.items():
            for system, value in row.items():
                assert value > 0, (op, system)

    @pytest.mark.parametrize("op", [
        "fork+exit", "fork+execv", "pipe lat", "socket lat",
    ])
    def test_native_fastest_kvm_slowest(self, table1, op):
        row = table1.rows[op]
        assert row["native"] <= row["hypernel"] <= row["kvm-guest"]

    def test_hypernel_cheaper_than_kvm_on_average(self, table1):
        assert (table1.average_overhead("hypernel")
                < table1.average_overhead("kvm-guest"))

    def test_hypernel_average_overhead_band(self, table1):
        """Paper: +8.8%.  Accept the right ballpark on tiny runs."""
        overhead = table1.average_overhead("hypernel")
        assert 2.0 < overhead < 20.0

    def test_kvm_average_overhead_band(self, table1):
        """Paper: +15.5%."""
        overhead = table1.average_overhead("kvm-guest")
        assert 5.0 < overhead < 30.0

    def test_pure_syscall_paths_nearly_free_under_hypernel(self, table1):
        """stat/signal involve no page-table updates: Hypernel ~ native."""
        for op in ("syscall stat", "signal install", "signal ovh"):
            row = table1.rows[op]
            assert row["hypernel"] <= row["native"] * 1.05

    def test_formatting_includes_paper_columns(self, table1):
        text = table1.format()
        assert "paper native" in text
        assert "fork+exit" in text


class TestFigure6Shape:
    def test_normalization_baseline(self, figure6):
        for row in figure6.normalized.values():
            assert row["native"] == pytest.approx(1.0)

    def test_hypernel_beats_kvm_on_every_app(self, figure6):
        for app, row in figure6.normalized.items():
            assert row["hypernel"] <= row["kvm-guest"], app

    def test_compute_bound_apps_barely_affected(self, figure6):
        for app in ("whetstone", "dhrystone"):
            assert figure6.normalized[app]["hypernel"] < 1.05
            assert figure6.normalized[app]["kvm-guest"] < 1.10

    def test_kernel_heavy_apps_show_kvm_pain(self, figure6):
        assert figure6.normalized["untar"]["kvm-guest"] > 1.10

    def test_average_bands(self, figure6):
        """Paper: KVM +13.5%, Hypernel +3.1%."""
        assert 5.0 < figure6.average_overhead("kvm-guest") < 30.0
        assert 0.0 < figure6.average_overhead("hypernel") < 8.0

    def test_chart_renders(self, figure6):
        chart = figure6.ascii_chart()
        assert "whetstone" in chart
        assert "#" in chart


class TestTable2Shape:
    def test_word_counts_are_a_small_fraction(self, table2):
        """Paper: 4.4%-9.2% per app, 6.2% overall."""
        for app, row in table2.counts.items():
            assert 0 < row["word"] < row["page"], app
            assert table2.ratio_percent(app) < 25.0, app
        assert 1.0 < table2.mean_ratio_percent() < 15.0

    def test_untar_dominates_event_volume(self, table2):
        untar = table2.counts["untar"]["page"]
        assert untar == max(row["page"] for row in table2.counts.values())

    def test_formatting(self, table2):
        text = table2.format()
        assert "word-granularity" in text
        assert "overall word/page ratio" in text


class TestScaleInvariance:
    def test_ratio_stable_across_scales(self):
        """The word/page ratio is a property of the write mix, not of
        the workload size (so scaled-down runs are faithful)."""
        small = run_table2(
            scale=0.05,
            platform_factory=small_platform_config,
            apps=[UntarWorkload(0.05)],
        )
        large = run_table2(
            scale=0.15,
            platform_factory=small_platform_config,
            apps=[UntarWorkload(0.15)],
        )
        ratio_small = small.ratio_percent("untar")
        ratio_large = large.ratio_percent("untar")
        assert ratio_small == pytest.approx(ratio_large, rel=0.5)

    def test_counts_grow_with_scale(self):
        small = run_table2(
            scale=0.05,
            platform_factory=small_platform_config,
            apps=[ApacheWorkload(0.05)],
        )
        large = run_table2(
            scale=0.2,
            platform_factory=small_platform_config,
            apps=[ApacheWorkload(0.2)],
        )
        assert large.counts["apache"]["page"] > 2 * small.counts["apache"]["page"]
