"""Unit tests for the execution-environment cost adapters."""

import pytest

from repro.arch.cpu import CPUCore
from repro.kernel.env import ExecutionEnvironment, KvmGuestEnvironment
from tests.helpers import small_platform


@pytest.fixture
def cpu():
    return CPUCore(small_platform())


class TestNativeEnvironment:
    def test_page_lifecycle_is_free(self, cpu):
        env = ExecutionEnvironment(cpu)
        before = cpu.clock.now
        env.page_lifecycle(100)
        assert cpu.clock.now == before
        assert env.stats.get("page_ops") == 100

    def test_context_switch_is_free(self, cpu):
        env = ExecutionEnvironment(cpu)
        before = cpu.clock.now
        env.context_switch_overhead()
        assert cpu.clock.now == before

    def test_fork_is_free(self, cpu):
        env = ExecutionEnvironment(cpu)
        before = cpu.clock.now
        env.process_fork()
        assert cpu.clock.now == before

    def test_io_charges_interrupt_costs(self, cpu):
        env = ExecutionEnvironment(cpu)
        before = cpu.clock.now
        env.block_io(4096)
        charged = cpu.clock.now - before
        costs = cpu.costs
        assert charged == (costs.io_request_base + costs.irq_entry
                           + costs.irq_exit)

    def test_ipi_charges_irq_costs(self, cpu):
        env = ExecutionEnvironment(cpu)
        before = cpu.clock.now
        env.interprocessor_interrupt()
        assert cpu.clock.now - before == cpu.costs.irq_entry + cpu.costs.irq_exit


class TestKvmEnvironment:
    def test_af_faults_fire_periodically(self, cpu):
        env = KvmGuestEnvironment(cpu)
        env.page_lifecycle(env.AF_FAULT_PERIOD - 1)
        assert env.stats.get("af_faults") == 0
        env.page_lifecycle(1)
        assert env.stats.get("af_faults") == 1

    def test_af_fault_cost(self, cpu):
        env = KvmGuestEnvironment(cpu)
        before = cpu.clock.now
        env.page_lifecycle(env.AF_FAULT_PERIOD)
        costs = cpu.costs
        assert cpu.clock.now - before == (
            costs.vm_exit + costs.kvm_af_fault_handling + costs.vm_enter
        )

    def test_accumulator_carries_remainder(self, cpu):
        env = KvmGuestEnvironment(cpu)
        env.page_lifecycle(env.AF_FAULT_PERIOD + 3)
        assert env.stats.get("af_faults") == 1
        env.page_lifecycle(env.AF_FAULT_PERIOD - 3)
        assert env.stats.get("af_faults") == 2

    def test_bulk_count_fires_multiple_faults(self, cpu):
        env = KvmGuestEnvironment(cpu)
        env.page_lifecycle(3 * env.AF_FAULT_PERIOD)
        assert env.stats.get("af_faults") == 3

    def test_context_switch_charges_hypervisor_tax(self, cpu):
        env = KvmGuestEnvironment(cpu)
        before = cpu.clock.now
        env.context_switch_overhead()
        assert cpu.clock.now - before == cpu.costs.kvm_context_switch_overhead

    def test_fork_charges_fixed_overhead(self, cpu):
        env = KvmGuestEnvironment(cpu)
        before = cpu.clock.now
        env.process_fork()
        assert cpu.clock.now - before == cpu.costs.kvm_fork_overhead

    def test_block_io_adds_two_world_trips(self, cpu):
        native = ExecutionEnvironment(cpu)
        start = cpu.clock.now
        native.block_io(4096)
        native_cost = cpu.clock.now - start
        kvm = KvmGuestEnvironment(cpu)
        start = cpu.clock.now
        kvm.block_io(4096)
        kvm_cost = cpu.clock.now - start
        assert kvm_cost == native_cost + 2 * (cpu.costs.vm_exit + cpu.costs.vm_enter)

    def test_net_io_adds_one_world_trip(self, cpu):
        native = ExecutionEnvironment(cpu)
        start = cpu.clock.now
        native.net_io()
        native_cost = cpu.clock.now - start
        kvm = KvmGuestEnvironment(cpu)
        start = cpu.clock.now
        kvm.net_io()
        kvm_cost = cpu.clock.now - start
        assert kvm_cost == native_cost + cpu.costs.vm_exit + cpu.costs.vm_enter

    def test_ipi_is_heavier_than_native(self, cpu):
        native = ExecutionEnvironment(cpu)
        start = cpu.clock.now
        native.interprocessor_interrupt()
        native_cost = cpu.clock.now - start
        kvm = KvmGuestEnvironment(cpu)
        start = cpu.clock.now
        kvm.interprocessor_interrupt()
        assert cpu.clock.now - start > 3 * native_cost
