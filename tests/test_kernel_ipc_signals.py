"""Unit tests for signals, pipes and sockets."""

import pytest

from repro.errors import SimulationError
from repro.kernel.objects import PIPE


@pytest.fixture
def system(native_system):
    native_system.spawn_init()
    return native_system


@pytest.fixture
def kernel(system):
    return system.kernel


@pytest.fixture
def task(kernel):
    return kernel.procs.current


class TestSignals:
    def test_install_records_handler(self, kernel, task):
        kernel.signals.sigaction(task, 12, 0x7000)
        assert task.sigactions[12] == 0x7000

    def test_bad_signal_number_rejected(self, kernel, task):
        with pytest.raises(SimulationError):
            kernel.signals.sigaction(task, 0, 0x7000)
        with pytest.raises(SimulationError):
            kernel.signals.sigaction(task, 65, 0x7000)

    def test_delivery_without_handler_rejected(self, kernel, task):
        with pytest.raises(SimulationError):
            kernel.signals.deliver(task, 31)

    def test_delivery_charges_time_and_counts(self, kernel, task):
        kernel.signals.sigaction(task, 10, 0x7000)
        before = kernel.platform.clock.now
        kernel.signals.deliver(task, 10)
        assert kernel.platform.clock.now > before
        assert kernel.signals.stats.get("delivered") == 1

    def test_reinstall_overwrites(self, kernel, task):
        kernel.signals.sigaction(task, 10, 0x7000)
        kernel.signals.sigaction(task, 10, 0x8000)
        assert task.sigactions[10] == 0x8000


class TestPipes:
    def test_create_initializes_bookkeeping(self, kernel, task):
        pipe = kernel.pipes.create()
        assert kernel.read_field(pipe.pipe_pa, PIPE, "readers") == 1
        assert kernel.read_field(pipe.pipe_pa, PIPE, "buf_page") == pipe.buf_page

    def test_write_then_read_moves_bytes(self, kernel, task):
        pipe = kernel.pipes.create()
        kernel.pipes.write(pipe, 64)
        assert pipe.fill_bytes == 64
        assert kernel.pipes.read(pipe, 100) == 64
        assert pipe.fill_bytes == 0

    def test_read_empty_returns_zero(self, kernel, task):
        pipe = kernel.pipes.create()
        assert kernel.pipes.read(pipe, 8) == 0

    def test_oversized_write_rejected(self, kernel, task):
        pipe = kernel.pipes.create()
        with pytest.raises(SimulationError):
            kernel.pipes.write(pipe, 8192)

    def test_destroy_releases_buffer(self, kernel, task):
        pipe = kernel.pipes.create()
        free_before = kernel.allocator.free_pages
        kernel.pipes.destroy(pipe)
        assert kernel.allocator.free_pages == free_before + 1

    def test_head_tail_advance_in_memory(self, kernel, task):
        pipe = kernel.pipes.create()
        kernel.pipes.write(pipe, 8)
        kernel.pipes.write(pipe, 8)
        kernel.pipes.read(pipe, 8)
        assert kernel.read_field(pipe.pipe_pa, PIPE, "head") == 16
        assert kernel.read_field(pipe.pipe_pa, PIPE, "tail") == 8


class TestSockets:
    def test_socketpair_allocates_two_endpoints(self, kernel, task):
        pair = kernel.sockets.socketpair()
        assert pair.a_pa != pair.b_pa
        assert pair.a_buf != pair.b_buf

    def test_send_recv_roundtrip(self, kernel, task):
        pair = kernel.sockets.socketpair()
        kernel.sockets.send(pair, "a", 128)
        kernel.sockets.recv(pair, "a", 128)
        assert kernel.sockets.stats.get("sends") == 1
        assert kernel.sockets.stats.get("recvs") == 1

    def test_socket_costs_more_than_pipe(self, kernel, task):
        pipe = kernel.pipes.create()
        pair = kernel.sockets.socketpair()
        start = kernel.platform.clock.now
        kernel.pipes.write(pipe, 8)
        pipe_cost = kernel.platform.clock.now - start
        start = kernel.platform.clock.now
        kernel.sockets.send(pair, "a", 8)
        socket_cost = kernel.platform.clock.now - start
        assert socket_cost > pipe_cost

    def test_destroy_releases_buffers(self, kernel, task):
        pair = kernel.sockets.socketpair()
        free_before = kernel.allocator.free_pages
        kernel.sockets.destroy(pair)
        assert kernel.allocator.free_pages == free_before + 2
