"""Tests for the kernel's MBM interrupt-forwarding stub (paper 6.2)."""

import pytest

from repro.core.hypercalls import HVC_MBM_SERVICE
from repro.hw.platform import MBM_IRQ
from repro.kernel.objects import CRED


class TestMbmIrqStub:
    def test_irq_forwards_into_hypersec(self, monitored_system):
        """MBM detection -> GIC -> kernel stub -> HVC -> event dispatch,
        all within the very write that caused it."""
        system = monitored_system
        init = system.spawn_init()
        kernel = system.kernel
        hvc_count = system.hypersec.stats.get("hvc.mbm_service")
        # One raw write to a monitored word.
        kernel.cpu.write(
            kernel.linear_map.kva(
                init.cred_pa + CRED.field("euid").byte_offset
            ),
            7,
        )
        assert system.hypersec.stats.get("hvc.mbm_service") == hvc_count + 1
        assert system.mbm.ring.pending() == 0  # drained synchronously

    def test_irq_charges_interrupt_costs(self, monitored_system):
        system = monitored_system
        init = system.spawn_init()
        kernel = system.kernel
        costs = kernel.costs
        before = system.now
        kernel.cpu.write(
            kernel.linear_map.kva(
                init.cred_pa + CRED.field("euid").byte_offset
            ),
            9,
        )
        elapsed = system.now - before
        floor = (costs.irq_entry + costs.irq_exit
                 + costs.hvc_entry + costs.hvc_exit)
        assert elapsed >= floor

    def test_spurious_irq_is_harmless(self, monitored_system):
        """An IRQ with an empty ring drains nothing and alerts nothing."""
        system = monitored_system
        system.spawn_init()
        dispatched = system.hypersec.stats.get("mbm_events_dispatched")
        system.platform.gic.raise_irq(MBM_IRQ)
        assert system.hypersec.stats.get("mbm_events_dispatched") == dispatched

    def test_double_install_is_rejected_by_gic(self, monitored_system):
        from repro.errors import ConfigurationError
        from repro.kernel.irq import MbmIrqStub

        with pytest.raises(ConfigurationError):
            MbmIrqStub(monitored_system.kernel).install()

    def test_mbm_service_hypercall_without_mbm_denied(self, hypernel_system):
        from repro.core.hypercalls import HVC_DENIED

        hypernel_system.spawn_init()
        assert hypernel_system.cpu.hvc(HVC_MBM_SERVICE) == HVC_DENIED
