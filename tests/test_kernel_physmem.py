"""Unit tests for the page allocator and the kernel linear map."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PAGE_BYTES, SECTION_BYTES
from repro.errors import AllocationError, ConfigurationError
from repro.kernel.physmem import LinearMap, PageAllocator
from repro.arch.cpu import CPUCore
from repro.arch.pagetable import KERNEL_VA_BASE
from repro.arch.registers import SCTLR_M
from tests.helpers import small_platform

BASE = 0x8000_0000


class TestPageAllocator:
    def test_alloc_returns_aligned_pages(self):
        alloc = PageAllocator(BASE, BASE + 16 * PAGE_BYTES)
        page = alloc.alloc()
        assert page % PAGE_BYTES == 0
        assert BASE <= page < BASE + 16 * PAGE_BYTES

    def test_alloc_until_exhaustion(self):
        alloc = PageAllocator(BASE, BASE + 4 * PAGE_BYTES)
        for _ in range(4):
            alloc.alloc()
        with pytest.raises(AllocationError):
            alloc.alloc()

    def test_free_recycles(self):
        alloc = PageAllocator(BASE, BASE + PAGE_BYTES)
        page = alloc.alloc()
        alloc.free(page)
        assert alloc.alloc() == page

    def test_double_free_rejected(self):
        alloc = PageAllocator(BASE, BASE + 4 * PAGE_BYTES)
        page = alloc.alloc()
        alloc.free(page)
        with pytest.raises(AllocationError):
            alloc.free(page)

    def test_free_unallocated_rejected(self):
        alloc = PageAllocator(BASE, BASE + 4 * PAGE_BYTES)
        with pytest.raises(AllocationError):
            alloc.free(BASE)

    def test_purpose_tracking(self):
        alloc = PageAllocator(BASE, BASE + 4 * PAGE_BYTES)
        page = alloc.alloc("pgtable")
        assert alloc.purpose_of(page) == "pgtable"
        alloc.free(page)
        assert alloc.purpose_of(page) is None

    def test_counters(self):
        alloc = PageAllocator(BASE, BASE + 8 * PAGE_BYTES)
        pages = [alloc.alloc() for _ in range(3)]
        assert alloc.allocated_pages == 3
        assert alloc.free_pages == 5
        for page in pages:
            alloc.free(page)
        assert alloc.allocated_pages == 0

    def test_misaligned_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            PageAllocator(BASE + 1, BASE + PAGE_BYTES)
        with pytest.raises(ConfigurationError):
            PageAllocator(BASE, BASE)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.booleans(), max_size=60))
    def test_no_page_handed_out_twice(self, operations):
        """Live pages are always disjoint, whatever the alloc/free mix."""
        alloc = PageAllocator(BASE, BASE + 16 * PAGE_BYTES)
        live = []
        for is_alloc in operations:
            if is_alloc or not live:
                if alloc.free_pages == 0:
                    continue
                page = alloc.alloc()
                assert page not in live
                live.append(page)
            else:
                alloc.free(live.pop())
        assert len(set(live)) == len(live)


class TestLinearMap:
    def _mapped_cpu(self, mode):
        platform = small_platform()
        linear = LinearMap(platform, mode)
        pool_base = platform.config.dram_base + 2 * 1024 * 1024
        root = linear.build(pool_base, platform.config.dram_base + 24 * 1024 * 1024)
        cpu = CPUCore(platform)
        cpu.regs.write("TTBR1_EL1", root)
        cpu.regs.set_bits("SCTLR_EL1", SCTLR_M)
        return platform, linear, cpu

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearMap(small_platform(), "huge")

    @pytest.mark.parametrize("mode", ["section", "page"])
    def test_translation_through_map(self, mode):
        platform, linear, cpu = self._mapped_cpu(mode)
        paddr = platform.config.dram_base + 30 * 1024 * 1024 + 0x1230
        result = cpu.mmu.translate(linear.kva(paddr) & ~7)
        assert result.paddr == paddr & ~7

    @pytest.mark.parametrize("mode", ["section", "page"])
    def test_kva_pa_roundtrip(self, mode):
        platform, linear, _ = self._mapped_cpu(mode)
        paddr = platform.config.dram_base + 0x123000
        assert linear.pa(linear.kva(paddr)) == paddr
        assert linear.kva(platform.config.dram_base) == KERNEL_VA_BASE

    def test_section_mode_uses_block_leaves(self):
        _, linear, cpu = self._mapped_cpu("section")
        result = cpu.mmu.translate(KERNEL_VA_BASE + 32 * 1024 * 1024)
        assert result.level == 2

    def test_page_mode_uses_page_leaves(self):
        _, linear, cpu = self._mapped_cpu("page")
        result = cpu.mmu.translate(KERNEL_VA_BASE + 32 * 1024 * 1024)
        assert result.level == 3

    def test_secure_region_not_mapped(self):
        platform, linear, cpu = self._mapped_cpu("page")
        from repro.errors import TranslationFault
        with pytest.raises(TranslationFault):
            cpu.mmu.translate(linear.kva(platform.secure_base))

    def test_section_mode_needs_fewer_tables(self):
        _, section_map, _ = self._mapped_cpu("section")
        _, page_map, _ = self._mapped_cpu("page")
        assert len(section_map.table_pages) < len(page_map.table_pages)

    @pytest.mark.parametrize("mode,level", [("section", 2), ("page", 3)])
    def test_leaf_desc_addr(self, mode, level):
        platform, linear, cpu = self._mapped_cpu(mode)
        paddr = platform.config.dram_base + 40 * 1024 * 1024
        desc_addr, found_level = linear.leaf_desc_addr(paddr)
        assert found_level == level
        raw = platform.bus.peek(desc_addr)
        assert raw & 1  # valid
        span = SECTION_BYTES if level == 2 else PAGE_BYTES
        assert (raw & ~0xFFF & ((1 << 48) - 1)) == paddr - paddr % span

    def test_leaf_desc_addr_outside_map_rejected(self):
        platform, linear, _ = self._mapped_cpu("page")
        with pytest.raises(AllocationError):
            linear.leaf_desc_addr(platform.secure_base)
