"""Unit tests for process management: fork/exec/exit/context switch."""

import pytest

from repro.errors import SimulationError
from repro.kernel.objects import CRED, TASK_STRUCT


@pytest.fixture
def system(native_system):
    native_system.spawn_init()
    return native_system


@pytest.fixture
def kernel(system):
    return system.kernel


@pytest.fixture
def init(kernel):
    return kernel.procs.current


class TestSpawnInit:
    def test_init_is_pid_1_and_current(self, kernel, init):
        assert init.pid == 1
        assert kernel.procs.current is init

    def test_init_is_root(self, kernel, init):
        assert kernel.read_field(init.cred_pa, CRED, "uid") == 0
        assert kernel.read_field(init.cred_pa, CRED, "euid") == 0

    def test_image_pages_are_mapped(self, kernel, init):
        mapped = len(init.mm.pages)
        expected = (kernel.procs.TEXT_PAGES + kernel.procs.DATA_PAGES
                    + kernel.procs.STACK_PAGES)
        assert mapped == expected

    def test_cpu_runs_init_address_space(self, kernel, init):
        assert kernel.cpu.mrs("TTBR0_EL1") == init.mm.pgd
        assert kernel.cpu.mmu.asid == init.mm.asid


class TestFork:
    def test_child_gets_new_pid_and_parent_link(self, kernel, init):
        child = kernel.procs.fork(init)
        assert child.pid != init.pid
        assert child.parent is init
        assert kernel.read_field(child.task_pa, TASK_STRUCT, "pid") == child.pid

    def test_child_cred_is_a_copy(self, kernel, init):
        kernel.sys.setuid(init, 1000)
        child = kernel.procs.fork(init)
        assert child.cred_pa != init.cred_pa
        assert kernel.read_field(child.cred_pa, CRED, "uid") == 1000
        # Independent: changing the child does not touch the parent.
        kernel.write_field(child.cred_pa, CRED, "uid", 7)
        assert kernel.read_field(init.cred_pa, CRED, "uid") == 1000

    def test_child_inherits_sigactions(self, kernel, init):
        kernel.signals.sigaction(init, 10, 0x5000)
        child = kernel.procs.fork(init)
        assert child.sigactions[10] == 0x5000

    def test_fork_without_current_rejected(self, kernel):
        kernel.procs.current = None
        with pytest.raises(SimulationError):
            kernel.procs.fork()


class TestExecExit:
    def test_exec_replaces_address_space(self, kernel, init):
        child = kernel.procs.fork(init)
        kernel.procs.context_switch(child)
        old_mm = child.mm
        kernel.procs.execv(child)
        assert child.mm is not old_mm
        assert kernel.cpu.mrs("TTBR0_EL1") == child.mm.pgd
        kernel.procs.exit(child)
        kernel.procs.context_switch(init)

    def test_exec_clears_sigactions(self, kernel, init):
        kernel.signals.sigaction(init, 10, 0x5000)
        child = kernel.procs.fork(init)
        kernel.procs.context_switch(child)
        kernel.procs.execv(child)
        assert child.sigactions == {}
        kernel.procs.exit(child)
        kernel.procs.context_switch(init)

    def test_exec_on_non_current_rejected(self, kernel, init):
        child = kernel.procs.fork(init)
        with pytest.raises(SimulationError):
            kernel.procs.execv(child)
        kernel.procs.context_switch(child)
        kernel.procs.exit(child)
        kernel.procs.context_switch(init)

    def test_exit_frees_task_and_cred(self, kernel, init):
        cred_cache = kernel.slab.cache(CRED)
        live_before = cred_cache.live_objects
        child = kernel.procs.fork(init)
        assert cred_cache.live_objects == live_before + 1
        kernel.procs.context_switch(child)
        kernel.procs.exit(child)
        kernel.procs.context_switch(init)
        assert cred_cache.live_objects == live_before
        assert child.pid not in kernel.procs.tasks
        assert not child.alive


class TestContextSwitch:
    def test_switch_changes_ttbr_and_asid(self, kernel, init):
        child = kernel.procs.fork(init)
        kernel.procs.context_switch(child)
        assert kernel.cpu.mrs("TTBR0_EL1") == child.mm.pgd
        assert kernel.cpu.mmu.asid == child.mm.asid
        kernel.procs.context_switch(init)
        assert kernel.cpu.mmu.asid == init.mm.asid
        kernel.procs.exit(child) if False else None

    def test_switch_to_dead_task_rejected(self, kernel, init):
        child = kernel.procs.fork(init)
        kernel.procs.context_switch(child)
        kernel.procs.exit(child)
        with pytest.raises(SimulationError):
            kernel.procs.context_switch(child)
        kernel.procs.context_switch(init)
