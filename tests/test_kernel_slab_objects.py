"""Unit tests for object layouts and the slab allocator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import PAGE_BYTES
from repro.errors import AllocationError
from repro.kernel.objects import (
    ALL_LAYOUTS,
    CRED,
    DENTRY,
    Field,
    INODE,
    ObjectLayout,
    TASK_STRUCT,
)


class TestObjectLayouts:
    def test_all_layouts_fit_in_a_page(self):
        for layout in ALL_LAYOUTS.values():
            assert layout.size_bytes <= PAGE_BYTES

    def test_cred_sensitive_set_matches_paper_targets(self):
        names = {f.name for f in CRED.sensitive_fields()}
        assert {"uid", "euid", "cap_effective"} <= names
        assert "usage" not in names  # the hot refcount stays unmonitored

    def test_dentry_sensitive_set(self):
        names = {f.name for f in DENTRY.sensitive_fields()}
        assert {"d_parent", "d_name", "d_inode"} <= names
        assert "d_lockref" not in names

    def test_field_lookup(self):
        field = CRED.field("euid")
        assert field.byte_offset == field.offset * 8

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            CRED.field("nonexistent")

    def test_overlapping_fields_rejected(self):
        with pytest.raises(ValueError):
            ObjectLayout("bad", [Field("a", 0, size=2), Field("b", 1)])

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            ObjectLayout("bad", [Field("a", 0), Field("a", 1)])

    def test_sensitive_ranges_are_coalesced(self):
        # cred's uid..cap_bset are contiguous: one range expected.
        ranges = CRED.sensitive_ranges(0x1000)
        assert len(ranges) == 1
        base, size = ranges[0]
        assert base == 0x1000 + CRED.field("uid").byte_offset
        assert size == (CRED.field("cap_bset").offset
                        - CRED.field("uid").offset + 1) * 8

    def test_dentry_sensitive_ranges_split_around_hot_fields(self):
        ranges = DENTRY.sensitive_ranges(0)
        assert len(ranges) > 1  # d_iname separates d_inode from d_op

    def test_whole_range_covers_object(self):
        base, size = TASK_STRUCT.whole_range(0x2000)
        assert base == 0x2000
        assert size == TASK_STRUCT.size_bytes

    @given(st.integers(0, 1 << 40))
    def test_sensitive_ranges_inside_object(self, base):
        base *= 8
        for layout in (CRED, DENTRY, INODE):
            for start, size in layout.sensitive_ranges(base):
                assert base <= start
                assert start + size <= base + layout.size_bytes


class TestSlabCache:
    @pytest.fixture
    def kernel(self, native_system):
        return native_system.kernel

    def test_alloc_returns_distinct_objects(self, kernel):
        cache = kernel.slab.cache(CRED)
        objects = {cache.alloc() for _ in range(10)}
        assert len(objects) == 10

    def test_objects_do_not_overlap(self, kernel):
        cache = kernel.slab.cache(DENTRY)
        objects = sorted(cache.alloc() for _ in range(40))
        for first, second in zip(objects, objects[1:]):
            assert second - first >= DENTRY.size_bytes

    def test_objects_stay_inside_slab_pages(self, kernel):
        cache = kernel.slab.cache(CRED)
        for _ in range(cache.objects_per_page + 1):
            obj = cache.alloc()
            page = obj & ~(PAGE_BYTES - 1)
            assert page in cache.pages
            assert obj + CRED.size_bytes <= page + PAGE_BYTES

    def test_free_and_reuse(self, kernel):
        cache = kernel.slab.cache(CRED)
        obj = cache.alloc()
        cache.free(obj)
        assert cache.alloc() == obj

    def test_double_free_rejected(self, kernel):
        cache = kernel.slab.cache(CRED)
        obj = cache.alloc()
        cache.free(obj)
        with pytest.raises(AllocationError):
            cache.free(obj)

    def test_grows_by_whole_pages(self, kernel):
        cache = kernel.slab.cache(CRED)
        for _ in range(cache.objects_per_page):
            cache.alloc()
        assert cache.stats.get("pages") == 1
        cache.alloc()
        assert cache.stats.get("pages") == 2

    def test_alloc_hook_fires_before_init(self, kernel):
        seen = []
        kernel.object_alloc.subscribe(lambda layout, pa: seen.append((layout.name, pa)))
        obj = kernel.slab.cache(CRED).alloc()
        assert seen == [("cred", obj)]

    def test_free_hook_fires(self, kernel):
        seen = []
        kernel.object_free.subscribe(lambda layout, pa: seen.append(pa))
        cache = kernel.slab.cache(CRED)
        obj = cache.alloc()
        cache.free(obj)
        assert seen == [obj]

    def test_live_object_count(self, kernel):
        cache = kernel.slab.cache(INODE)
        start = cache.live_objects
        objs = [cache.alloc() for _ in range(5)]
        assert cache.live_objects == start + 5
        for obj in objs:
            cache.free(obj)
        assert cache.live_objects == start

    def test_registry_reuses_caches(self, kernel):
        assert kernel.slab.cache(CRED) is kernel.slab.cache(CRED)

    def test_field_read_write_through_kernel(self, kernel):
        obj = kernel.slab.cache(CRED).alloc()
        kernel.write_field(obj, CRED, "euid", 1234)
        assert kernel.read_field(obj, CRED, "euid") == 1234

    def test_multiword_field_indexing(self, kernel):
        obj = kernel.slab.cache(DENTRY).alloc()
        kernel.write_field(obj, DENTRY, "d_iname", 7, index=2)
        assert kernel.read_field(obj, DENTRY, "d_iname", index=2) == 7
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            kernel.write_field(obj, DENTRY, "d_iname", 0, index=4)
