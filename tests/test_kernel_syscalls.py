"""Unit tests for the syscall layer."""

import pytest

from repro.kernel.objects import CRED, INODE


@pytest.fixture
def system(native_system):
    native_system.spawn_init()
    return native_system


@pytest.fixture
def kernel(system):
    return system.kernel


@pytest.fixture
def task(kernel):
    return kernel.procs.current


class TestFilesystemCalls:
    def test_stat_returns_attributes(self, kernel, task):
        kernel.vfs.mkdir_p("/tmp")
        kernel.sys.creat(task, "/tmp/file")
        attrs = kernel.sys.stat(task, "/tmp/file")
        assert attrs is not None
        assert attrs["i_nlink"] == 1

    def test_stat_missing_returns_none(self, kernel, task):
        assert kernel.sys.stat(task, "/absent") is None

    def test_creat_stamps_caller_fsuid(self, kernel, task):
        kernel.sys.setuid(task, 1000)
        kernel.vfs.mkdir_p("/home")
        kernel.sys.creat(task, "/home/mine")
        node = kernel.vfs.lookup("/home/mine")
        assert kernel.read_field(node.inode_pa, INODE, "i_uid") == 1000

    def test_open_write_read_close(self, kernel, task):
        handle = kernel.sys.open(task, "/data", create=True)
        kernel.sys.write(task, handle, 4096)
        handle.pos = 0
        assert kernel.sys.read(task, handle, 4096) == 4096
        kernel.sys.close(task, handle)

    def test_fd_based_attr_calls_touch_inode_only(self, kernel, task):
        handle = kernel.sys.open(task, "/fdattr", create=True)
        lookups_before = kernel.vfs.stats.get("dcache_lookups")
        kernel.sys.fchmod(task, handle, 0o640)
        kernel.sys.fchown(task, handle, 5, 6)
        kernel.sys.futimes(task, handle)
        assert kernel.vfs.stats.get("dcache_lookups") == lookups_before
        assert kernel.read_field(handle.node.inode_pa, INODE, "i_mode") == 0o640
        assert kernel.read_field(handle.node.inode_pa, INODE, "i_uid") == 5
        kernel.sys.close(task, handle)

    def test_every_syscall_charges_entry_exit(self, kernel, task):
        before = kernel.platform.clock.now
        kernel.sys.stat(task, "/absent")
        delta = kernel.platform.clock.now - before
        assert delta >= kernel.costs.svc_entry + kernel.costs.svc_exit

    def test_syscall_counters(self, kernel, task):
        kernel.sys.stat(task, "/absent")
        kernel.sys.stat(task, "/absent")
        assert kernel.sys.stats.get("stat") == 2
        assert kernel.sys.stats.get("total") >= 2


class TestCredentialCalls:
    def test_setuid_updates_all_uid_words(self, kernel, task):
        kernel.sys.setuid(task, 501)
        for name in ("uid", "euid", "suid", "fsuid"):
            assert kernel.read_field(task.cred_pa, CRED, name) == 501

    def test_setuid_announces_authorized_updates(self, kernel, task):
        seen = []
        kernel.authorized_update.subscribe(lambda pa, v: seen.append((pa, v)))
        kernel.sys.setuid(task, 77)
        uid_pa = task.cred_pa + CRED.field("uid").byte_offset
        assert (uid_pa, 77) in seen


class TestMemoryCalls:
    def test_mmap_places_vmas_without_overlap(self, kernel, task):
        first = kernel.sys.mmap(task, 8 * 4096)
        second = kernel.sys.mmap(task, 8 * 4096)
        assert first.end <= second.start or second.end <= first.start
        kernel.sys.munmap(task, first)
        kernel.sys.munmap(task, second)

    def test_munmap_removes_vma(self, kernel, task):
        vma = kernel.sys.mmap(task, 4096)
        kernel.sys.munmap(task, vma)
        assert vma not in task.mm.vmas


class TestGranularityGap:
    def test_page_mode_kernel_never_gap_faults(self, hypernel_system):
        system = hypernel_system
        init = system.spawn_init()
        system.kernel.vfs.mkdir_p("/tmp")
        system.kernel.sys.creat(init, "/tmp/x")
        assert system.kernel.stats.get("granularity_gap_faults") == 0

    def test_section_mode_kernel_gap_faults_and_emulates(self, platform_config):
        """Ablation B's mechanism: with a 2 MB-section linear map under
        Hypernel, data sharing a section with page tables write-faults
        and is emulated by Hypersec."""
        from repro.core.hypernel import build_hypernel
        from repro.kernel.kernel import KernelConfig

        system = build_hypernel(
            platform_config=platform_config,
            kernel_config=KernelConfig(linear_map_mode="section"),
            with_mbm=False,
        )
        init = system.spawn_init()
        system.kernel.vfs.mkdir_p("/tmp")
        system.kernel.sys.creat(init, "/tmp/x")
        assert system.kernel.stats.get("granularity_gap_faults") > 0
        assert system.hypersec.stats.get("gap_emulated_writes") > 0
