"""Unit tests for the VFS: dentry cache, namespace ops, file I/O."""

import pytest

from repro.errors import AllocationError
from repro.kernel.objects import DENTRY, INODE


@pytest.fixture
def kernel(native_system):
    native_system.spawn_init()
    return native_system.kernel


@pytest.fixture
def vfs(kernel):
    return kernel.vfs


class TestLookup:
    def test_root_lookup(self, vfs):
        assert vfs.lookup("/") is vfs.root

    def test_missing_path_returns_none(self, vfs):
        assert vfs.lookup("/no/such/file") is None

    def test_create_then_lookup(self, vfs):
        vfs.mkdir_p("/a/b")
        node = vfs.create("/a/b/c.txt")
        assert vfs.lookup("/a/b/c.txt") is node

    def test_lookup_balances_refcounts(self, kernel, vfs):
        vfs.mkdir_p("/a/b")
        vfs.create("/a/b/c.txt")
        node = vfs.lookup("/a/b/c.txt")
        for check in (node, node.parent, node.parent.parent):
            assert kernel.read_field(check.dentry_pa, DENTRY, "d_lockref") == 0

    def test_lockref_churn_is_hot(self, kernel, vfs):
        """Path walks write d_lockref (the Table 2 noise source)."""
        vfs.mkdir_p("/x")
        vfs.create("/x/f")
        dgets_before = vfs.stats.get("dget")
        vfs.lookup("/x/f")
        assert vfs.stats.get("dget") == dgets_before + 3  # /, x, f


class TestNamespace:
    def test_create_writes_sensitive_identity_fields(self, kernel, vfs):
        node = vfs.create("/victim")
        assert kernel.read_field(node.dentry_pa, DENTRY, "d_inode") == node.inode_pa
        assert kernel.read_field(node.dentry_pa, DENTRY, "d_parent") == vfs.root.dentry_pa

    def test_create_in_missing_dir_rejected(self, vfs):
        with pytest.raises(AllocationError):
            vfs.create("/missing/file")

    def test_duplicate_create_rejected(self, vfs):
        vfs.create("/dup")
        with pytest.raises(AllocationError):
            vfs.create("/dup")

    def test_mkdir_p_idempotent(self, vfs):
        first = vfs.mkdir_p("/deep/nest/ed")
        second = vfs.mkdir_p("/deep/nest/ed")
        assert first is second

    def test_unlink_clears_d_inode_and_frees(self, kernel, vfs):
        node = vfs.create("/gone")
        dentry_pa = node.dentry_pa
        live_before = kernel.slab.cache(DENTRY).live_objects
        vfs.unlink("/gone")
        assert vfs.lookup("/gone") is None
        assert kernel.slab.cache(DENTRY).live_objects == live_before - 1
        assert kernel.platform.bus.peek(
            dentry_pa + DENTRY.field("d_inode").byte_offset
        ) == 0

    def test_unlink_missing_rejected(self, vfs):
        with pytest.raises(AllocationError):
            vfs.unlink("/missing")

    def test_rename(self, kernel, vfs):
        vfs.create("/old")
        vfs.rename("/old", "new")
        assert vfs.lookup("/old") is None
        assert vfs.lookup("/new") is not None

    def test_chmod_chown(self, kernel, vfs):
        node = vfs.create("/attrs")
        vfs.chmod("/attrs", 0o600)
        vfs.chown("/attrs", 42, 43)
        assert kernel.read_field(node.inode_pa, INODE, "i_mode") == 0o600
        assert kernel.read_field(node.inode_pa, INODE, "i_uid") == 42
        assert kernel.read_field(node.inode_pa, INODE, "i_gid") == 43


class TestFileIO:
    def test_write_extends_and_sets_size(self, kernel, vfs):
        vfs.create("/data")
        handle = vfs.open("/data")
        vfs.write_file(handle, 10_000)
        assert handle.node.size_bytes == 10_000
        assert kernel.read_field(handle.node.inode_pa, INODE, "i_size") == 10_000
        assert len(handle.node.data_pages) == 3
        vfs.close(handle)

    def test_read_respects_eof(self, vfs):
        vfs.create("/short")
        handle = vfs.open("/short")
        vfs.write_file(handle, 100)
        handle.pos = 0
        assert vfs.read_file(handle, 1000) == 100
        assert vfs.read_file(handle, 1000) == 0
        vfs.close(handle)

    def test_open_create_flag(self, vfs):
        handle = vfs.open("/created-on-open", create=True)
        assert vfs.lookup("/created-on-open") is not None
        vfs.close(handle)

    def test_open_missing_rejected(self, vfs):
        with pytest.raises(AllocationError):
            vfs.open("/nope")

    def test_double_close_rejected(self, vfs):
        handle = vfs.open("/f", create=True)
        vfs.close(handle)
        with pytest.raises(AllocationError):
            vfs.close(handle)

    def test_unlink_frees_data_pages(self, kernel, vfs):
        vfs.create("/big")
        handle = vfs.open("/big")
        vfs.write_file(handle, 8 * 4096)
        vfs.close(handle)
        free_before = kernel.allocator.free_pages
        vfs.unlink("/big")
        assert kernel.allocator.free_pages == free_before + 8


class TestLruChurn:
    def test_dput_to_zero_parks_on_lru(self, kernel, vfs):
        node = vfs.create("/lru-test")
        vfs.lookup("/lru-test")  # dget+dput cycle ends at refcount 0
        flags = kernel.read_field(node.dentry_pa, DENTRY, "d_flags")
        assert flags & 0x80  # parked on the LRU

    def test_dget_from_zero_unparks(self, kernel, vfs):
        node = vfs.create("/lru-test2")
        vfs.lookup("/lru-test2")
        handle = vfs.open("/lru-test2")  # holds a reference
        flags = kernel.read_field(node.dentry_pa, DENTRY, "d_flags")
        assert not flags & 0x80
        vfs.close(handle)
