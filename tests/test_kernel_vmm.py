"""Unit tests for user VMM: demand paging, COW, fork, teardown."""

import pytest

from repro.config import PAGE_BYTES
from repro.errors import AllocationError, SecurityViolation, SimulationError


@pytest.fixture
def system(native_system):
    native_system.spawn_init()
    return native_system


@pytest.fixture
def kernel(system):
    return system.kernel


@pytest.fixture
def task(kernel):
    return kernel.procs.current


class TestDemandPaging:
    def test_first_touch_faults_and_maps(self, kernel, task):
        vma = kernel.sys.mmap(task, 4 * PAGE_BYTES)
        faults_before = kernel.vmm.stats.get("faults")
        kernel.vmm.user_touch(task.mm, vma.start, is_write=True, value=5)
        assert kernel.vmm.stats.get("faults") == faults_before + 1
        assert vma.start in task.mm.pages

    def test_second_touch_does_not_fault(self, kernel, task):
        vma = kernel.sys.mmap(task, PAGE_BYTES)
        kernel.vmm.user_touch(task.mm, vma.start, is_write=True, value=5)
        faults = kernel.vmm.stats.get("faults")
        kernel.vmm.user_touch(task.mm, vma.start)
        assert kernel.vmm.stats.get("faults") == faults

    def test_demand_page_reads_zero(self, kernel, task):
        vma = kernel.sys.mmap(task, PAGE_BYTES)
        assert kernel.vmm.user_touch(task.mm, vma.start + 8) == 0

    def test_touch_outside_vma_segfaults(self, kernel, task):
        with pytest.raises(SecurityViolation):
            kernel.vmm.user_touch(task.mm, 0x3000_0000, is_write=True)

    def test_write_to_readonly_vma_segfaults(self, kernel, task):
        vma = kernel.vmm.add_vma(task.mm, 0x2800_0000, PAGE_BYTES,
                                 writable=False, kind="file")
        kernel.vmm.user_touch(task.mm, vma.start)  # read is fine
        with pytest.raises(SecurityViolation):
            kernel.vmm.user_touch(task.mm, vma.start, is_write=True)

    def test_touch_wrong_address_space_rejected(self, kernel, task):
        other = kernel.vmm.create_mm()
        with pytest.raises(SimulationError):
            kernel.vmm.user_touch(other, 0x40_0000)


class TestVmaManagement:
    def test_overlapping_vma_rejected(self, kernel, task):
        kernel.vmm.add_vma(task.mm, 0x2800_0000, 4 * PAGE_BYTES, True, "anon")
        with pytest.raises(AllocationError):
            kernel.vmm.add_vma(task.mm, 0x2800_1000, PAGE_BYTES, True, "anon")

    def test_munmap_releases_pages(self, kernel, task):
        vma = kernel.sys.mmap(task, 4 * PAGE_BYTES)
        for page in range(4):
            kernel.vmm.user_touch(task.mm, vma.start + page * PAGE_BYTES,
                                  is_write=True, value=1)
        free_before = kernel.allocator.free_pages
        kernel.sys.munmap(task, vma)
        assert kernel.allocator.free_pages == free_before + 4
        assert all(not vma.contains(v) for v in task.mm.pages)


class TestCopyOnWrite:
    def _forked_pair(self, kernel, task):
        vma = kernel.sys.mmap(task, 2 * PAGE_BYTES)
        kernel.vmm.user_touch(task.mm, vma.start, is_write=True, value=77)
        child = kernel.procs.fork(task)
        return vma, child

    def test_fork_shares_frames_cow(self, kernel, task):
        vma, child = self._forked_pair(kernel, task)
        assert child.mm.pages[vma.start] == task.mm.pages[vma.start]
        assert child.mm.cow[vma.start]
        assert task.mm.cow[vma.start]

    def test_parent_write_breaks_cow(self, kernel, task):
        vma, child = self._forked_pair(kernel, task)
        shared = task.mm.pages[vma.start]
        breaks_before = kernel.vmm.stats.get("cow_breaks")
        kernel.vmm.user_touch(task.mm, vma.start, is_write=True, value=88)
        assert kernel.vmm.stats.get("cow_breaks") == breaks_before + 1
        assert task.mm.pages[vma.start] != shared      # parent got a copy
        assert child.mm.pages[vma.start] == shared     # child keeps original

    def test_child_write_breaks_cow_in_child(self, kernel, task):
        vma, child = self._forked_pair(kernel, task)
        shared = child.mm.pages[vma.start]
        kernel.procs.context_switch(child)
        kernel.vmm.user_touch(child.mm, vma.start, is_write=True, value=99)
        assert child.mm.pages[vma.start] != shared
        kernel.procs.context_switch(task)

    def test_sole_owner_rearms_in_place(self, kernel, task):
        """After the child exits, the parent's COW break reuses the frame."""
        vma, child = self._forked_pair(kernel, task)
        shared = task.mm.pages[vma.start]
        kernel.procs.context_switch(child)
        kernel.procs.exit(child)
        kernel.procs.context_switch(task)
        kernel.vmm.user_touch(task.mm, vma.start, is_write=True, value=5)
        assert task.mm.pages[vma.start] == shared  # no copy needed

    def test_read_does_not_break_cow(self, kernel, task):
        vma, child = self._forked_pair(kernel, task)
        breaks = kernel.vmm.stats.get("cow_breaks")
        kernel.vmm.user_touch(task.mm, vma.start)
        assert kernel.vmm.stats.get("cow_breaks") == breaks
        assert task.mm.cow[vma.start]


class TestTeardown:
    def test_destroy_mm_returns_all_memory(self, kernel, task):
        allocated_before = kernel.allocator.allocated_pages
        child = kernel.procs.fork(task)
        kernel.procs.context_switch(child)
        # Child privatizes one page so a real copy exists.
        kernel.vmm.user_touch(
            child.mm, kernel.vmm.DATA_BASE, is_write=True, value=3
        )
        kernel.procs.exit(child)
        kernel.procs.context_switch(task)
        assert kernel.allocator.allocated_pages == allocated_before

    def test_fork_exit_cycles_are_stable(self, kernel, task):
        """Repeated fork+exit neither leaks pages nor grows tables."""
        def cycle():
            child = kernel.procs.fork(task)
            kernel.procs.context_switch(child)
            kernel.procs.exit(child)
            kernel.procs.context_switch(task)
        cycle()
        allocated = kernel.allocator.allocated_pages
        for _ in range(5):
            cycle()
        assert kernel.allocator.allocated_pages == allocated
