"""Tests for the MBM interrupt-coalescing extension."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.platform import MBM_IRQ, Platform
from repro.core.mbm.mbm import MemoryBusMonitor
from tests.conftest import small_platform_config

TARGET = 0x8100_0000


def make_mbm(coalesce):
    platform = Platform(small_platform_config())
    mbm = MemoryBusMonitor(platform, irq_coalesce=coalesce)
    mbm.attach()
    fired = []
    platform.gic.register(MBM_IRQ, fired.append)
    word_addr, bit = mbm.bitmap.locate(TARGET)
    platform.bus.poke(word_addr, 1 << bit)
    return platform, mbm, fired


class TestCoalescing:
    def test_default_is_one_irq_per_event(self):
        platform, mbm, fired = make_mbm(coalesce=1)
        for index in range(3):
            platform.caches.write(TARGET, index, cacheable=False)
        assert len(fired) == 3

    def test_batched_delivery(self):
        platform, mbm, fired = make_mbm(coalesce=4)
        for index in range(8):
            platform.caches.write(TARGET, index, cacheable=False)
        assert len(fired) == 2
        assert mbm.stats.get("irqs_coalesced") == 6

    def test_no_event_is_lost(self):
        platform, mbm, fired = make_mbm(coalesce=4)
        for index in range(10):
            platform.caches.write(TARGET, index, cacheable=False)
        assert mbm.events_detected == 10
        assert mbm.ring.pending() == 10  # all recorded, whatever the IRQs

    def test_flush_delivers_stragglers(self):
        platform, mbm, fired = make_mbm(coalesce=8)
        for index in range(3):
            platform.caches.write(TARGET, index, cacheable=False)
        assert fired == []
        mbm.flush_events()
        assert len(fired) == 1
        mbm.flush_events()  # idempotent when nothing is pending
        assert len(fired) == 1

    def test_invalid_batch_rejected(self):
        platform = Platform(small_platform_config())
        with pytest.raises(ConfigurationError):
            MemoryBusMonitor(platform, irq_coalesce=0)

    def test_monitored_system_accepts_knob(self):
        from repro.core.hypernel import build_hypernel
        from repro.security import CredIntegrityMonitor

        system = build_hypernel(
            platform_config=small_platform_config(),
            monitors=[CredIntegrityMonitor()],
            irq_coalesce=16,
        )
        init = system.spawn_init()
        system.kernel.sys.setuid(init, 1000)
        system.mbm.flush_events()
        # Events reached the app even though interrupts were batched.
        assert system.monitor_by_name("cred_monitor").event_count > 0
        assert system.monitor_by_name("cred_monitor").alerts == []
