"""Unit tests for the MBM building blocks (paper Figure 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ProtocolError
from repro.core.mbm.bitmap import WordBitmap
from repro.core.mbm.bitmap_cache import BitmapCache
from repro.core.mbm.fifo import CaptureFifo
from repro.core.mbm.ringbuf import EventRingBuffer
from tests.helpers import small_platform

BASE = 0x8000_0000
LIMIT = 0x8400_0000  # 64 MB covered
BITMAP_BASE = 0x8800_0000


@pytest.fixture
def bitmap():
    return WordBitmap(BITMAP_BASE, BASE, LIMIT)


class TestWordBitmap:
    def test_size_is_one_bit_per_word(self, bitmap):
        covered_words = (LIMIT - BASE) // 8
        assert bitmap.size_bytes == covered_words // 8

    def test_locate_first_word(self, bitmap):
        word_addr, bit = bitmap.locate(BASE)
        assert word_addr == BITMAP_BASE
        assert bit == 0

    def test_locate_word_63(self, bitmap):
        word_addr, bit = bitmap.locate(BASE + 63 * 8)
        assert word_addr == BITMAP_BASE
        assert bit == 63

    def test_locate_second_bitmap_word(self, bitmap):
        word_addr, bit = bitmap.locate(BASE + 64 * 8)
        assert word_addr == BITMAP_BASE + 8
        assert bit == 0

    def test_locate_outside_rejected(self, bitmap):
        with pytest.raises(ConfigurationError):
            bitmap.locate(LIMIT)

    def test_words_for_range_single(self, bitmap):
        pairs = list(bitmap.words_for_range(BASE + 16, 8))
        assert pairs == [(BITMAP_BASE, 1 << 2)]

    def test_words_for_range_spans_bitmap_words(self, bitmap):
        pairs = list(bitmap.words_for_range(BASE + 62 * 8, 4 * 8))
        assert len(pairs) == 2
        assert pairs[0][1] == (1 << 62) | (1 << 63)
        assert pairs[1][1] == 0b11

    def test_words_for_range_empty(self, bitmap):
        assert list(bitmap.words_for_range(BASE, 0)) == []

    @settings(max_examples=60)
    @given(st.integers(0, (LIMIT - BASE) // 8 - 600), st.integers(1, 4096))
    def test_range_masks_cover_exactly_the_range(self, word_index, nbytes):
        """The OR of the produced masks covers each word in the range
        exactly once and nothing outside it."""
        bitmap = WordBitmap(BITMAP_BASE, BASE, LIMIT)
        base = BASE + word_index * 8
        covered = set()
        for word_addr, mask in bitmap.words_for_range(base, nbytes):
            origin = (word_addr - BITMAP_BASE) // 8 * 64
            for bit in range(64):
                if mask >> bit & 1:
                    word = origin + bit
                    assert word not in covered
                    covered.add(word)
        first = (base - BASE) // 8
        last = (base + nbytes - 1 - BASE) // 8
        assert covered == set(range(first, last + 1))

    def test_pages_for_range(self, bitmap):
        pages = bitmap.pages_for_range(BASE + 0xFF8, 16)
        assert pages == [BASE, BASE + 0x1000]


class TestBitmapCache:
    def test_miss_then_hit(self):
        cache = BitmapCache(entries=4)
        assert cache.lookup(0x100) is None
        cache.fill(0x100, 0xAB)
        assert cache.lookup(0x100) == 0xAB

    def test_lru_eviction(self):
        cache = BitmapCache(entries=2)
        cache.fill(0x100, 1)
        cache.fill(0x108, 2)
        cache.lookup(0x100)          # refresh
        cache.fill(0x110, 3)         # evicts 0x108
        assert cache.lookup(0x108) is None
        assert cache.lookup(0x100) == 1

    def test_snoop_update_refreshes_cached_word(self):
        cache = BitmapCache(entries=4)
        cache.fill(0x100, 0)
        cache.snoop_update(0x100, 0xFF)
        assert cache.lookup(0x100) == 0xFF

    def test_snoop_update_does_not_allocate(self):
        cache = BitmapCache(entries=4)
        cache.snoop_update(0x200, 0xFF)
        assert cache.lookup(0x200) is None  # read-allocate policy

    def test_disabled_cache_always_misses(self):
        cache = BitmapCache(entries=4, enabled=False)
        cache.fill(0x100, 7)
        assert cache.lookup(0x100) is None
        assert cache.stats.get("bypasses") == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            BitmapCache(entries=0)


class TestCaptureFifo:
    def test_fifo_order(self):
        fifo = CaptureFifo(depth=4)
        fifo.push(1, 10)
        fifo.push(2, 20)
        assert fifo.pop() == (1, 10)
        assert fifo.pop() == (2, 20)
        assert fifo.pop() is None

    def test_overrun_latches_and_drops(self):
        fifo = CaptureFifo(depth=2)
        assert fifo.push(1, None)
        assert fifo.push(2, None)
        assert not fifo.push(3, None)
        assert fifo.overrun
        assert len(fifo) == 2
        fifo.clear_overrun()
        assert not fifo.overrun

    def test_max_depth_statistic(self):
        fifo = CaptureFifo(depth=8)
        for index in range(5):
            fifo.push(index, None)
        for _ in range(5):
            fifo.pop()
        assert fifo.stats.get("max_depth") == 5

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            CaptureFifo(depth=0)


class TestEventRingBuffer:
    @pytest.fixture
    def ring(self):
        platform = small_platform()
        return EventRingBuffer(platform.bus, platform.secure_base, entries=4)

    def test_produce_consume_roundtrip(self, ring):
        ring.produce(0x1000, 0xAA)
        ring.produce(0x1008, 0xBB)
        assert ring.pending() == 2
        events = ring.consume_all()
        assert events == [(0x1000, 0xAA), (0x1008, 0xBB)]
        assert ring.pending() == 0

    def test_none_value_encodes_as_all_ones(self, ring):
        ring.produce(0x1000, None)
        [(addr, value)] = ring.consume_all()
        assert addr == 0x1000
        assert value == (1 << 64) - 1

    def test_overflow_drops(self, ring):
        for index in range(6):
            ring.produce(index * 8, index)
        assert ring.pending() == 4
        assert ring.stats.get("overflow_drops") == 2

    def test_wraparound(self, ring):
        for round_number in range(3):
            for index in range(3):
                assert ring.produce(index * 8, round_number)
            events = ring.consume_all()
            assert [value for _, value in events] == [round_number] * 3

    def test_corrupted_indices_detected(self, ring):
        ring.produce(0x1000, 1)
        # Kernel-style corruption: tail driven past head.
        ring.bus.poke(ring.base + 8, 99)
        with pytest.raises(ProtocolError):
            ring.consume_all()

    def test_too_small_ring_rejected(self):
        platform = small_platform()
        with pytest.raises(ProtocolError):
            EventRingBuffer(platform.bus, platform.secure_base, entries=1)
