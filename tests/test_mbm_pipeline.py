"""Integration tests for the assembled MBM pipeline on a live bus."""

import pytest

from repro.hw.platform import Platform
from repro.core.mbm.mbm import MemoryBusMonitor


@pytest.fixture
def platform(platform_config):
    return Platform(platform_config)


@pytest.fixture
def mbm(platform):
    monitor = MemoryBusMonitor(platform, raise_interrupts=False)
    monitor.attach()
    return monitor


def arm(mbm, base, size):
    """Set bitmap bits for a range via the device backdoor."""
    bus = mbm.platform.bus
    for word_addr, mask in mbm.bitmap.words_for_range(base, size):
        bus.poke(word_addr, bus.peek(word_addr) | mask)


TARGET = 0x8100_0000


class TestDetection:
    def test_uncached_write_to_monitored_word_detected(self, platform, mbm):
        arm(mbm, TARGET, 8)
        platform.caches.write(TARGET, 0x42, cacheable=False)
        assert mbm.events_detected == 1
        [(addr, value)] = mbm.ring.consume_all()
        assert addr == TARGET
        assert value == 0x42

    def test_neighbouring_word_not_detected(self, platform, mbm):
        arm(mbm, TARGET, 8)
        platform.caches.write(TARGET + 8, 0x42, cacheable=False)
        assert mbm.events_detected == 0

    def test_word_granularity_suppresses_hot_neighbours(self, platform, mbm):
        """The paper's core efficiency claim at the hardware level: only
        the monitored word of a busy object generates events."""
        arm(mbm, TARGET, 8)  # monitor word 0 only
        for index in range(100):
            platform.caches.write(TARGET + 16, index, cacheable=False)
        platform.caches.write(TARGET, 1, cacheable=False)
        assert mbm.events_detected == 1
        assert mbm.decision.stats.get("checked") == 101

    def test_reads_are_ignored(self, platform, mbm):
        arm(mbm, TARGET, 8)
        platform.caches.read(TARGET, cacheable=False)
        assert mbm.events_detected == 0

    def test_block_write_hits_every_monitored_word(self, platform, mbm):
        arm(mbm, TARGET + 24, 16)  # words 3 and 4
        platform.bus.write_block(TARGET, 64)
        assert mbm.events_detected == 2
        events = mbm.ring.consume_all()
        assert {addr for addr, _ in events} == {TARGET + 24, TARGET + 32}

    def test_block_write_outside_monitored_area_costs_little(self, platform, mbm):
        arm(mbm, TARGET, 8)
        fetches = mbm.translator.stats.get("dram_fetches")
        platform.bus.write_block(TARGET + 0x10_0000, 512)
        # One page -> at most 8 bitmap words consulted.
        assert mbm.translator.stats.get("dram_fetches") - fetches <= 8
        assert mbm.events_detected == 0


class TestBlockWriteSnooping:
    """BLOCK_WRITE semantics: a bulk copy is one transaction carrying the
    covered range, and the MBM must find every monitored word in it —
    at the edges of the range as well as in the middle."""

    def test_monitored_words_at_range_edges_detected(self, platform, mbm):
        # First word, a middle word and the last word of a 64-word burst.
        arm(mbm, TARGET, 8)
        arm(mbm, TARGET + 31 * 8, 8)
        arm(mbm, TARGET + 63 * 8, 8)
        platform.bus.write_block(TARGET, 64)
        assert mbm.events_detected == 3
        events = mbm.ring.consume_all()
        assert {addr for addr, _ in events} == {
            TARGET, TARGET + 31 * 8, TARGET + 63 * 8
        }

    def test_words_just_outside_covered_range_ignored(self, platform, mbm):
        arm(mbm, TARGET - 8, 8)        # one word before the burst
        arm(mbm, TARGET + 64 * 8, 8)   # one word after the burst
        platform.bus.write_block(TARGET, 64)
        assert mbm.events_detected == 0

    def test_block_values_unavailable(self, platform, mbm):
        """Block-modelled streams carry no per-word values: the ring
        records the all-ones sentinel."""
        arm(mbm, TARGET, 8)
        platform.bus.write_block(TARGET, 4)
        [(addr, value)] = mbm.ring.consume_all()
        assert addr == TARGET
        assert value == (1 << 64) - 1

    def test_snooper_sees_one_transaction_per_block(self, platform, mbm):
        observed = mbm.snooper.stats.get("observed")
        platform.bus.write_block(TARGET, 512)
        assert mbm.snooper.stats.get("observed") == observed + 1
        assert platform.bus.stats.get("block_writes") == 1
        assert platform.bus.stats.get("block_words") == 512

    def test_bulk_copy_through_cpu_path_detected(self, platform, mbm):
        """A CPU bulk write over non-cacheable pages reaches the bus as
        BLOCK_WRITE transactions whose ranges include the monitored word."""
        from repro.arch.cpu import CPUCore
        from repro.arch.pagetable import KERNEL_VA_BASE
        from repro.arch.registers import SCTLR_M
        from tests.helpers import TableBuilder

        cpu = CPUCore(platform)
        builder = TableBuilder(platform, TARGET + 0x20_0000)
        vaddr = KERNEL_VA_BASE + 0x10_0000
        builder.map_page(vaddr, TARGET, cacheable=False)
        builder.map_page(vaddr + 0x1000, TARGET + 0x1000, cacheable=False)
        cpu.regs.write("TTBR1_EL1", builder.root)
        cpu.regs.set_bits("SCTLR_EL1", SCTLR_M)

        monitored = TARGET + 100 * 8
        arm(mbm, monitored, 8)
        cpu.write_block(vaddr, 700)  # 5600 bytes: spans both mapped pages
        assert mbm.events_detected == 1
        [(addr, _)] = mbm.ring.consume_all()
        assert addr == monitored

    def test_detached_snooper_sees_nothing_but_stats_still_count(self, platform, mbm):
        """With no snoopers attached the bus skips notification entirely;
        transaction statistics must still be exact."""
        arm(mbm, TARGET, 8)
        mbm.detach()
        platform.bus.write_block(TARGET, 64)
        assert mbm.events_detected == 0
        assert platform.bus.stats.get("block_writes") == 1
        assert platform.bus.stats.get("block_words") == 64


class TestCacheabilityRequirement:
    def test_cacheable_writes_are_invisible(self, platform, mbm):
        """Paper 5.3: without the non-cacheable attribute, writes hide in
        the cache and the MBM sees nothing — the reason Hypersec retunes
        monitored pages."""
        arm(mbm, TARGET, 8)
        platform.caches.write(TARGET, 0x99, cacheable=True)
        assert mbm.events_detected == 0

    def test_eventual_writeback_flags_hazard(self, platform, mbm):
        arm(mbm, TARGET, 8)
        platform.caches.write(TARGET, 0x99, cacheable=True)
        platform.caches.clean_invalidate_page(TARGET & ~0xFFF)
        assert mbm.events_detected == 0  # values were not decodable
        assert mbm.stats.get("writeback_hazards") == 1


class TestBitmapCacheCoherency:
    def test_uncached_bitmap_update_reaches_mbm(self, platform, mbm):
        """Hypersec's uncached bitmap stores are snooped: a previously
        cached zero word must not mask a newly enabled bit."""
        # Prime the MBM's bitmap cache with the (zero) word.
        platform.caches.write(TARGET, 1, cacheable=False)
        assert mbm.events_detected == 0
        # Now enable the bit the way Hypersec does: an uncached store.
        word_addr, bit = mbm.bitmap.locate(TARGET)
        current = platform.bus.peek(word_addr)
        platform.caches.write(word_addr, current | (1 << bit), cacheable=False)
        platform.caches.write(TARGET, 2, cacheable=False)
        assert mbm.events_detected == 1

    def test_bitmap_cache_reduces_dram_fetches(self, platform, mbm):
        arm(mbm, TARGET, 8)
        for index in range(50):
            platform.caches.write(TARGET, index, cacheable=False)
        assert mbm.translator.stats.get("dram_fetches") == 1
        assert mbm.bitmap_cache.stats.get("hits") == 49

    def test_disabled_bitmap_cache_fetches_every_time(self, platform_config):
        platform = Platform(platform_config)
        mbm = MemoryBusMonitor(platform, bitmap_cache_enabled=False,
                               raise_interrupts=False)
        mbm.attach()
        arm(mbm, TARGET, 8)
        for index in range(50):
            platform.caches.write(TARGET, index, cacheable=False)
        assert mbm.translator.stats.get("dram_fetches") == 50


class TestMonitorIsolation:
    def test_mbm_ignores_its_own_traffic(self, platform, mbm):
        arm(mbm, TARGET, 8)
        before = mbm.snooper.stats.get("observed")
        platform.caches.write(TARGET, 1, cacheable=False)
        # The detection produced ring-buffer writes with initiator "mbm";
        # they must not have been observed (no feedback loop).
        observed = mbm.snooper.stats.get("observed") - before
        assert observed == 1

    def test_dma_write_into_secure_region_flagged(self, platform, mbm):
        alerts = []
        mbm.tamper_alert.subscribe(alerts.append)
        platform.bus.write(platform.secure_base + 0x2000, 7, initiator="dma")
        assert len(alerts) == 1
        assert mbm.snooper.stats.get("secure_tamper_writes") == 1

    def test_cpu_write_into_secure_region_not_flagged(self, platform, mbm):
        """EL2 (Hypersec) legitimately writes its own region."""
        alerts = []
        mbm.tamper_alert.subscribe(alerts.append)
        platform.bus.write(platform.secure_base + 0x2000, 7, initiator="cpu")
        assert alerts == []

    def test_double_attach_rejected(self, platform, mbm):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            mbm.attach()


class TestInterruptPath:
    def test_detection_raises_platform_irq(self, platform_config):
        from repro.hw.platform import MBM_IRQ, Platform

        platform = Platform(platform_config)
        mbm = MemoryBusMonitor(platform, raise_interrupts=True)
        mbm.attach()
        fired = []
        platform.gic.register(MBM_IRQ, fired.append)
        arm(mbm, TARGET, 8)
        platform.caches.write(TARGET, 5, cacheable=False)
        assert fired == [MBM_IRQ]
