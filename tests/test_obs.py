"""Tests for the unified observability layer (:mod:`repro.obs`) and the
three MBM event-loss / attribution regressions it was built around:

* ring-buffer tail write-back charged to the consumer's own ``writer``;
* span-aware ``BusTracer.writes_to`` / ``summary`` page bucketing;
* no IRQ for detections the ring dropped on overflow.
"""

import json

import pytest

from repro.config import PAGE_BYTES, WORD_BYTES
from repro.core.hypernel import build_hypernel, build_native
from repro.core.mbm.mbm import MemoryBusMonitor
from repro.core.mbm.ringbuf import EventRingBuffer
from repro.errors import IntegrityError
from repro.hw.platform import MBM_IRQ, Platform
from repro.obs import (
    DetectionTrace,
    RunMetrics,
    attribute_cycles,
    bus_trace_records,
    collect_metrics,
    metrics_records,
    verify_payload_integrity,
    write_jsonl,
)
from repro.obs.export import read_jsonl
from repro.security import CredIntegrityMonitor
from repro.tools.trace import BusTracer
from tests.conftest import small_platform_config
from tests.helpers import small_config, small_platform

TARGET = 0x8100_0000
RING_BASE = 0x8200_0000


@pytest.fixture
def platform():
    return small_platform()


@pytest.fixture
def monitored(platform_config):
    system = build_hypernel(
        platform_config=platform_config,
        monitors=[CredIntegrityMonitor()],
    )
    system.spawn_init()
    return system


def arm(mbm, paddr):
    word_addr, bit = mbm.bitmap.locate(paddr)
    bus = mbm.platform.bus
    bus.poke(word_addr, bus.peek(word_addr) | (1 << bit))


def force_fifo_overrun(system):
    """Latch a FIFO overrun directly (the drain is synchronous, so a
    real burst can't outrun it in simulation)."""
    fifo = system.mbm.fifo
    for index in range(fifo.depth + 1):
        fifo.push(TARGET, index)
    assert fifo.overrun


# ----------------------------------------------------------------------
# Regression 1: consume_all tail write-back attribution
# ----------------------------------------------------------------------
class TestRingWriterAttribution:
    def test_consume_all_routes_tail_through_supplied_writer(self, platform):
        ring = EventRingBuffer(platform.bus, RING_BASE, entries=8)
        ring.produce(TARGET, 5)
        writes = []

        def writer(paddr, value):
            writes.append((paddr, value))
            platform.bus.write(paddr, value)

        events = ring.consume_all(
            reader=lambda paddr: platform.bus.read(paddr), writer=writer
        )
        assert events == [(TARGET, 5)]
        # Pre-fix the write-back bypassed the writer entirely.
        assert writes == [(ring.base + WORD_BYTES, 1)]
        assert platform.bus.peek(ring.base + WORD_BYTES) == 1

    def test_tail_writeback_initiator_follows_consumer(self, platform):
        ring = EventRingBuffer(platform.bus, RING_BASE, entries=8)
        ring.produce(TARGET, 5)
        with BusTracer(platform, base=RING_BASE, size=0x1000) as tracer:
            ring.consume_all(
                reader=lambda p: platform.bus.read(p, initiator="monitor"),
                writer=lambda p, v: platform.bus.write(
                    p, v, initiator="monitor"
                ),
            )
        [record] = tracer.writes_to(ring.base + WORD_BYTES)
        # Pre-fix this store was a plain bus write: initiator "cpu".
        assert record.initiator == "monitor"

    def test_default_writer_preserves_readerless_behaviour(self, platform):
        ring = EventRingBuffer(platform.bus, RING_BASE, entries=8)
        ring.produce(TARGET, 1)
        ring.produce(TARGET + 8, 2)
        assert ring.consume_all() == [(TARGET, 1), (TARGET + 8, 2)]
        assert platform.bus.peek(ring.base + WORD_BYTES) == 2

    def test_hypersec_drain_charges_tail_store_as_uncached(self, monitored):
        """System-level: Hypersec's one store per drain now shows up in
        the cache hierarchy's uncached-store count (it used to be a raw
        bus write, invisible to the consuming agent's accounting)."""
        monitored.mbm.ring.produce(TARGET, 7)  # unmonitored -> orphan
        caches = monitored.platform.caches
        reads_before = caches.stats.get("uncached_reads")
        writes_before = caches.stats.get("uncached_writes")
        monitored.hypersec._h_mbm_service()
        # head + tail + one (addr, value) entry = 4 uncached loads ...
        assert caches.stats.get("uncached_reads") - reads_before == 4
        # ... and exactly one uncached store: the tail write-back.
        assert caches.stats.get("uncached_writes") - writes_before == 1


# ----------------------------------------------------------------------
# Regression 2: span-aware trace queries
# ----------------------------------------------------------------------
class TestTraceSpans:
    def test_writes_to_matches_inside_block_span(self, platform):
        with BusTracer(platform) as tracer:
            platform.bus.write_block(TARGET, 8)  # 8 words = 64 bytes
        assert len(tracer.writes_to(TARGET + 32)) == 1
        assert tracer.writes_to(TARGET + 32)[0].kind == "block_write"

    def test_writes_to_excludes_past_span_end(self, platform):
        with BusTracer(platform) as tracer:
            platform.bus.write_block(TARGET, 8)
        assert tracer.writes_to(TARGET + 8 * WORD_BYTES) == []

    def test_writes_to_still_matches_single_words(self, platform):
        with BusTracer(platform) as tracer:
            platform.bus.write(TARGET, 1)
            platform.bus.read(TARGET)
        assert [r.kind for r in tracer.writes_to(TARGET)] == ["write"]

    def test_summary_buckets_every_page_a_span_touches(self, platform):
        span_start = TARGET + PAGE_BYTES - 2 * WORD_BYTES
        with BusTracer(platform) as tracer:
            platform.bus.write_block(span_start, 4)  # straddles the page
        pages = tracer.summary()["hot_pages"]
        assert f"{TARGET:#x}" in pages
        assert f"{TARGET + PAGE_BYTES:#x}" in pages


# ----------------------------------------------------------------------
# Regression 3: overflow-dropped detections must not raise IRQs
# ----------------------------------------------------------------------
class TestOverflowIrqSuppression:
    def make_mbm(self, ring_entries=2):
        platform = Platform(small_config(mbm_ring_entries=ring_entries))
        mbm = MemoryBusMonitor(platform)
        mbm.attach()
        fired = []
        platform.gic.register(MBM_IRQ, fired.append)
        arm(mbm, TARGET)
        return platform, mbm, fired

    def test_no_irq_for_dropped_events(self):
        platform, mbm, fired = self.make_mbm(ring_entries=2)
        for index in range(4):
            platform.caches.write(TARGET, index, cacheable=False)
        assert mbm.events_detected == 4
        assert mbm.ring.stats.get("overflow_drops") == 2
        assert mbm.decision.stats.get("lost_events") == 2
        assert mbm.events_lost == 2
        # Pre-fix: 4 interrupts for 2 queued events — the handler would
        # find an empty ring twice and the two losses stayed silent.
        assert len(fired) == 2

    def test_on_hit_hook_sees_queued_flag(self):
        platform, mbm, fired = self.make_mbm(ring_entries=2)
        hits = []
        mbm.decision.on_hit = lambda paddr, value, queued: hits.append(queued)
        for index in range(3):
            platform.caches.write(TARGET, index, cacheable=False)
        assert hits == [True, True, False]


# ----------------------------------------------------------------------
# Regression 4 (found by the integrity gate): Hypersec's registration
# flush must not be booked as a writeback hazard
# ----------------------------------------------------------------------
class TestRegistrationFlushAttribution:
    def test_expected_flush_rebuckets_hazards(self):
        platform = Platform(small_config())
        mbm = MemoryBusMonitor(platform, raise_interrupts=False)
        mbm.attach()
        arm(mbm, TARGET)
        mbm.note_writeback(TARGET, 8)
        assert mbm.stats.get("writeback_hazards") == 1
        with mbm.expected_flush():
            mbm.note_writeback(TARGET, 8)
        assert mbm.stats.get("writeback_hazards") == 1
        assert mbm.stats.get("flushed_writebacks") == 1
        # The bracket is transient: back to hazard accounting after.
        mbm.note_writeback(TARGET, 8)
        assert mbm.stats.get("writeback_hazards") == 2

    def test_registration_flush_is_not_a_hazard(self, monitored):
        # Register a region over a page with a dirty cache line (the
        # normal life cycle of a freshly written kernel object): the
        # registration's own clean-invalidate used to latch a
        # writeback_hazard and fail the run's integrity check.
        from repro.core import hypercalls as hc

        kernel, hypersec = monitored.kernel, monitored.hypersec
        paddr = kernel.allocator.alloc("test-object")
        monitored.platform.caches.write(paddr, 0x1234, cacheable=True)
        sid = next(iter(hypersec._apps))
        rc = hypersec._h_register_region(
            sid, kernel.linear_map.kva(paddr), 8
        )
        assert rc == hc.HVC_OK
        assert monitored.mbm.stats.get("flushed_writebacks") == 1
        assert monitored.mbm.stats.get("writeback_hazards") == 0
        assert collect_metrics(monitored).check(
            "mbm.writeback_hazards"
        ).passed


# ----------------------------------------------------------------------
# RunMetrics collection and integrity checks
# ----------------------------------------------------------------------
class TestRunMetrics:
    def test_collection_is_clock_neutral_and_idempotent(self, monitored):
        monitored.kernel.sys.setuid(monitored.kernel.procs.current, 1000)
        before = monitored.platform.clock.now
        first = collect_metrics(monitored)
        assert monitored.platform.clock.now == before
        second = collect_metrics(monitored)
        assert first.to_dict() == second.to_dict()

    def test_clean_run_has_all_checks_passing(self, monitored):
        monitored.kernel.sys.setuid(monitored.kernel.procs.current, 1000)
        metrics = collect_metrics(monitored)
        assert metrics.clean
        assert len(metrics.checks) == 5
        assert metrics.check("mbm_fifo.overrun").value == 0
        assert metrics.gauges["events_detected"] > 0
        assert metrics.gauges["fifo_depth"] == 64
        assert metrics.counter("mbm_decision", "hits") > 0

    def test_no_mbm_means_no_checks(self):
        system = build_native(platform_config=small_platform_config())
        metrics = collect_metrics(system)
        assert metrics.checks == []
        assert metrics.clean

    def test_round_trip_and_json_clean(self, monitored):
        metrics = collect_metrics(monitored)
        data = metrics.to_dict()
        json.dumps(data)  # must be JSON-serializable as-is
        assert RunMetrics.from_dict(data).to_dict() == data

    def test_forced_overrun_fails_loudly(self, monitored):
        force_fifo_overrun(monitored)
        metrics = collect_metrics(monitored)
        assert not metrics.clean
        names = {check.name for check in metrics.failures}
        assert "mbm_fifo.overrun" in names
        assert "mbm_fifo.dropped" in names
        with pytest.raises(IntegrityError, match="mbm_fifo.overrun"):
            metrics.raise_on_failure("test run")

    def test_waiver_silences_named_checks_only(self, monitored):
        force_fifo_overrun(monitored)
        metrics = collect_metrics(
            monitored, waive=("mbm_fifo.overrun", "mbm_fifo.dropped")
        )
        assert metrics.clean
        assert metrics.check("mbm_fifo.overrun").waived

    def test_unknown_waiver_name_raises(self, monitored):
        with pytest.raises(IntegrityError, match="no_such.check"):
            collect_metrics(monitored, waive=("no_such.check",))


# ----------------------------------------------------------------------
# Cycle attribution
# ----------------------------------------------------------------------
class TestProfiler:
    def test_buckets_plus_residual_equal_total(self, monitored):
        monitored.kernel.sys.setuid(monitored.kernel.procs.current, 1000)
        attribution = attribute_cycles(monitored)
        assert attribution.total == monitored.platform.clock.now
        assert attribution.residual >= 0
        assert (
            sum(attribution.buckets.values()) + attribution.residual
            == attribution.total
        )
        assert attribution.buckets["hypercall_round_trips"] > 0

    def test_clock_scopes_are_attributed(self, monitored):
        with monitored.platform.clock.scope("workload"):
            monitored.kernel.sys.setuid(monitored.kernel.procs.current, 1000)
        attribution = attribute_cycles(monitored)
        assert attribution.scopes["workload"] > 0
        assert attribution.as_flat_dict()["scope:workload"] > 0


# ----------------------------------------------------------------------
# JSONL export
# ----------------------------------------------------------------------
class TestExport:
    def test_bus_trace_records(self, platform):
        with BusTracer(platform, base=TARGET, size=0x100) as tracer:
            platform.bus.write(TARGET, 1)
            platform.bus.write(TARGET + 8, 2)
        records = bus_trace_records(tracer)
        assert len(records) == 2
        assert all(record["type"] == "bus_txn" for record in records)
        assert records[0]["paddr"] == TARGET

    def test_detection_trace_records_hits(self):
        platform = Platform(small_config())
        mbm = MemoryBusMonitor(platform, raise_interrupts=False)
        mbm.attach()
        arm(mbm, TARGET)
        with DetectionTrace(mbm) as trace:
            platform.caches.write(TARGET, 0x42, cacheable=False)
        assert len(trace) == 1
        assert trace.records[0]["paddr"] == TARGET
        assert trace.records[0]["queued"] is True
        # Detached: further detections are not recorded.
        platform.caches.write(TARGET, 0x43, cacheable=False)
        assert len(trace) == 1

    def test_detection_trace_refuses_double_attach(self):
        platform = Platform(small_config())
        mbm = MemoryBusMonitor(platform, raise_interrupts=False)
        mbm.attach()
        first = DetectionTrace(mbm).attach()
        with pytest.raises(ValueError):
            DetectionTrace(mbm).attach()
        first.detach()

    def test_jsonl_round_trip(self, tmp_path, monitored):
        metrics = collect_metrics(monitored)
        records = metrics_records(metrics)
        path = tmp_path / "metrics.jsonl"
        assert write_jsonl(path, records) == len(records)
        assert read_jsonl(path) == records
        types = {record["type"] for record in records}
        assert {"counter", "gauge", "integrity_check",
                "cycle_attribution"} <= types


# ----------------------------------------------------------------------
# Payload-level enforcement (runner integration surface)
# ----------------------------------------------------------------------
class TestPayloadIntegrity:
    def test_skips_payloads_without_metrics(self):
        # Pre-observability cache entries carry no report: tolerated.
        verify_payload_integrity(["cell"], [{"rows": {}}])

    def test_raises_naming_cell_and_check(self, monitored):
        force_fifo_overrun(monitored)
        payload = {"metrics": collect_metrics(monitored).to_dict()}
        with pytest.raises(IntegrityError) as excinfo:
            verify_payload_integrity(["table1:hypernel:lmbench"], [payload])
        message = str(excinfo.value)
        assert "table1:hypernel:lmbench" in message
        assert "mbm_fifo.overrun" in message

    def test_waiver_applies_at_verification_time(self, monitored):
        force_fifo_overrun(monitored)
        payload = {"metrics": collect_metrics(monitored).to_dict()}
        verify_payload_integrity(
            ["cell"], [payload],
            waive=("mbm_fifo.overrun", "mbm_fifo.dropped"),
        )

    def test_run_cells_rejects_bad_integrity_mode(self):
        from repro.tools.runner import run_cells

        with pytest.raises(ValueError):
            run_cells([], integrity="bogus")


# ----------------------------------------------------------------------
# Report health section
# ----------------------------------------------------------------------
class TestHealthReport:
    def test_health_lines_flag_failed_checks(self, monitored):
        from repro.analysis.report import health_lines

        force_fifo_overrun(monitored)
        data = collect_metrics(monitored).to_dict()
        text = "\n".join(health_lines({"table1": {"hypernel": data}}))
        assert "FAILED" in text
        assert "mbm_fifo.overrun" in text

    def test_health_lines_report_na_without_mbm(self):
        from repro.analysis.report import health_lines

        system = build_native(platform_config=small_platform_config())
        data = collect_metrics(system).to_dict()
        text = "\n".join(health_lines({"table1": {"native": data}}))
        assert "n/a (no MBM)" in text


# ----------------------------------------------------------------------
# CLI: python -m repro metrics
# ----------------------------------------------------------------------
class TestMetricsCli:
    @pytest.fixture
    def snapshot(self, tmp_path, monitored):
        from repro.state import save_snapshot

        monitored.kernel.sys.setuid(monitored.kernel.procs.current, 1000)
        path = tmp_path / "clean.snap"
        save_snapshot(monitored, path)
        return path

    @pytest.fixture
    def lossy_snapshot(self, tmp_path, monitored):
        from repro.state import save_snapshot

        force_fifo_overrun(monitored)
        path = tmp_path / "lossy.snap"
        save_snapshot(monitored, path)
        return path

    def test_clean_snapshot_exits_zero(self, capsys, snapshot):
        from repro.cli import main

        assert main(["metrics", "--snapshot", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "integrity checks" in out
        assert "[    ok] mbm_fifo.overrun = 0" in out

    def test_forced_overrun_fails_with_named_check(
        self, capsys, lossy_snapshot
    ):
        from repro.cli import main

        assert main(["metrics", "--snapshot", str(lossy_snapshot)]) == 1
        out = capsys.readouterr().out
        assert "INTEGRITY FAILURE" in out
        assert "mbm_fifo.overrun = 1" in out

    def test_waive_turns_failure_into_success(self, capsys, lossy_snapshot):
        from repro.cli import main

        assert main([
            "metrics", "--snapshot", str(lossy_snapshot),
            "--waive", "mbm_fifo.overrun", "--waive", "mbm_fifo.dropped",
        ]) == 0

    def test_no_enforce_reports_but_exits_zero(self, capsys, lossy_snapshot):
        from repro.cli import main

        assert main([
            "metrics", "--snapshot", str(lossy_snapshot), "--no-enforce"
        ]) == 0
        assert "FAILED" in capsys.readouterr().out

    def test_unknown_waiver_is_an_error(self, capsys, snapshot):
        from repro.cli import main

        assert main([
            "metrics", "--snapshot", str(snapshot), "--waive", "nope.nope"
        ]) == 1
        assert "error:" in capsys.readouterr().out

    def test_json_export(self, capsys, tmp_path, snapshot):
        from repro.cli import main

        out_path = tmp_path / "metrics.jsonl"
        assert main([
            "metrics", "--snapshot", str(snapshot), "--json", str(out_path)
        ]) == 0
        records = read_jsonl(out_path)
        assert records
        assert any(r["type"] == "integrity_check" for r in records)
