"""Cross-cutting property-based tests (hypothesis).

These check whole-subsystem invariants under randomized operation
sequences — the properties the design leans on rather than individual
behaviours:

* translation agrees with a reference model of the mappings we built;
* the MBM detects exactly the writes that hit registered words;
* Hypersec's invariants survive arbitrary *legitimate* kernel activity;
* allocator/slab/VFS bookkeeping never double-books memory.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import PAGE_BYTES
from repro.core.hypernel import build_hypernel
from repro.core.mbm.mbm import MemoryBusMonitor
from repro.arch.cpu import CPUCore
from repro.arch.pagetable import KERNEL_VA_BASE
from repro.arch.registers import SCTLR_M
from repro.security import CredIntegrityMonitor, DentryIntegrityMonitor
from tests.conftest import small_platform_config
from tests.helpers import TableBuilder, small_platform

BASE = 0x8000_0000


class TestTranslationAgainstReference:
    @settings(max_examples=20, deadline=None)
    @given(
        st.dictionaries(
            st.integers(0, 500),          # virtual page index
            st.integers(600, 1100),       # physical frame index
            min_size=1,
            max_size=40,
        ),
        st.lists(st.integers(0, 500), max_size=30),
    )
    def test_walker_matches_reference_model(self, mapping, probes):
        """For random page mappings, the MMU translates exactly the
        mapped pages and faults on everything else."""
        platform = small_platform()
        builder = TableBuilder(platform, BASE + 0x10_0000)
        for vpage, pframe in mapping.items():
            builder.map_page(
                KERNEL_VA_BASE + vpage * PAGE_BYTES, BASE + pframe * PAGE_BYTES
            )
        cpu = CPUCore(platform)
        cpu.regs.write("TTBR1_EL1", builder.root)
        cpu.regs.set_bits("SCTLR_EL1", SCTLR_M)
        from repro.errors import TranslationFault

        for vpage in probes:
            vaddr = KERNEL_VA_BASE + vpage * PAGE_BYTES + 0x18
            if vpage in mapping:
                result = cpu.mmu.translate(vaddr)
                assert result.paddr == BASE + mapping[vpage] * PAGE_BYTES + 0x18
            else:
                with pytest.raises(TranslationFault):
                    cpu.mmu.translate(vaddr)


class TestMbmDetectionExactness:
    @settings(max_examples=20, deadline=None)
    @given(
        st.sets(st.integers(0, 255), min_size=1, max_size=40),   # armed words
        st.lists(st.integers(0, 255), min_size=1, max_size=60),  # writes
    )
    def test_detects_exactly_armed_words(self, armed, writes):
        """Every uncached write to an armed word is detected; writes to
        unarmed words never are — at word exactness."""
        platform = small_platform()
        mbm = MemoryBusMonitor(platform, raise_interrupts=False)
        mbm.attach()
        region = BASE + 0x20_0000
        for word_index in armed:
            word_addr, bit = mbm.bitmap.locate(region + word_index * 8)
            platform.bus.poke(word_addr, platform.bus.peek(word_addr) | (1 << bit))
        expected_hits = sum(1 for w in writes if w in armed)
        for word_index in writes:
            platform.caches.write(region + word_index * 8, word_index, cacheable=False)
        assert mbm.events_detected == expected_hits
        events = mbm.ring.consume_all()
        for addr, _value in events:
            assert (addr - region) // 8 in armed


@pytest.fixture(scope="module")
def _monitored():
    system = build_hypernel(
        platform_config=small_platform_config(),
        monitors=[CredIntegrityMonitor(), DentryIntegrityMonitor()],
    )
    system.spawn_init()
    return system


class TestHypersecInvariantPreservation:
    """Random legitimate kernel activity must keep every invariant."""

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(ops=st.lists(st.integers(0, 5), min_size=3, max_size=12),
           rng=st.randoms(use_true_random=False))
    def test_random_workload_keeps_invariants(self, _monitored, ops, rng):
        system = _monitored
        kernel = system.kernel
        init = kernel.procs.tasks[1]
        if kernel.procs.current is not init:
            kernel.procs.context_switch(init)
        kernel.vfs.mkdir_p("/p")
        serial = rng.randrange(1 << 30)
        for step, op in enumerate(ops):
            tag = f"{serial}-{step}"
            if op == 0:
                child = kernel.sys.fork(init)
                kernel.procs.context_switch(child)
                kernel.sys.exit(child)
                kernel.procs.context_switch(init)
            elif op == 1:
                kernel.sys.creat(init, f"/p/f{tag}")
            elif op == 2:
                vma = kernel.sys.mmap(init, 2 * PAGE_BYTES)
                kernel.vmm.user_touch(init.mm, vma.start, is_write=True, value=1)
                kernel.sys.munmap(init, vma)
            elif op == 3:
                kernel.sys.setuid(init, rng.randrange(2000))
            elif op == 4:
                path = f"/p/g{tag}"
                kernel.sys.creat(init, path)
                kernel.sys.unlink(init, path)
            else:
                kernel.sys.stat(init, "/p")
        report = system.hypersec.audit()
        assert report.clean, str(report)
        for app in system.monitors:
            assert app.alerts == []


class TestAllocatorConsistency:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.sampled_from(["cred", "dentry", "inode"]),
                    min_size=1, max_size=50),
           st.integers(0, 3))
    def test_slab_objects_disjoint_across_caches(self, kinds, free_every):
        from repro.core.hypernel import build_native
        from repro.kernel.objects import ALL_LAYOUTS

        system = build_native(platform_config=small_platform_config())
        kernel = system.kernel
        live = []
        for index, kind in enumerate(kinds):
            layout = ALL_LAYOUTS[kind]
            paddr = kernel.slab.cache(layout).alloc()
            for base, size, _ in live:
                assert not (paddr < base + size and base < paddr + layout.size_bytes)
            live.append((paddr, layout.size_bytes, layout))
            if free_every and index % (free_every + 1) == free_every:
                base, _size, layout = live.pop(0)
                kernel.slab.cache(layout).free(base)
