"""Property tests: vectorized bulk memory paths vs word-at-a-time models.

ISSUE 7's bulk fast paths (``PhysicalMemory.fill``/``copy_words``/
``read_words``, ``Caches.touch_block``'s batched streaming-store loop,
``MemoryBus.write_block``'s coalesced bitmap scan) are pure
optimizations: each must be observationally identical to the
word-at-a-time (or line-at-a-time) reference it replaced — same bytes,
same cycle charges, same bus-snoop events.  These properties drive
randomized op sequences through both and compare everything, with the
generators biased toward the edges that historically break such code:
chunk boundaries, cache-line boundaries, range ends and monitored
pages.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hw.memory import _CHUNK_BYTES, PhysicalMemory
from tests.helpers import small_platform

WORD = 8
BASE = 0x8000_0000
CHUNK_WORDS = _CHUNK_BYTES // WORD

# ----------------------------------------------------------------------
# PhysicalMemory bulk ops vs per-word reference
# ----------------------------------------------------------------------
#: Two adjacent ranges: runs crossing BASE + RANGE_BYTES exercise the
#: leave-the-range fallback inside fill/copy/read_words.
RANGE_BYTES = 2 * _CHUNK_BYTES
WINDOW_WORDS = 2 * RANGE_BYTES // WORD


def _dual_memory():
    mem = PhysicalMemory()
    mem.add_range(BASE, RANGE_BYTES)
    mem.add_range(BASE + RANGE_BYTES, RANGE_BYTES)
    return mem


#: Offsets biased toward chunk and range boundaries.
_edge_offsets = st.one_of(
    st.integers(0, WINDOW_WORDS - 1),
    st.builds(
        lambda boundary, jitter: max(
            0, min(WINDOW_WORDS - 1, boundary + jitter)
        ),
        st.sampled_from(
            [CHUNK_WORDS, 2 * CHUNK_WORDS, 3 * CHUNK_WORDS, WINDOW_WORDS]
        ),
        st.integers(-3, 3),
    ),
)

_mem_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("fill"), _edge_offsets, st.integers(1, 3 * CHUNK_WORDS),
            st.sampled_from([0, 1, 0xDEAD_BEEF_0BAD_F00D, (1 << 64) - 1]),
        ),
        st.tuples(
            st.just("copy"), _edge_offsets, _edge_offsets,
            st.integers(1, CHUNK_WORDS),
        ),
        st.tuples(
            st.just("write"), _edge_offsets,
            st.integers(0, (1 << 64) - 1), st.just(0),
        ),
    ),
    min_size=1,
    max_size=12,
)


class TestPhysicalMemoryBulkOps:
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(_mem_ops, st.data())
    def test_bulk_ops_match_word_loop(self, ops, data):
        fast = _dual_memory()
        ref = _dual_memory()
        for op in ops:
            if op[0] == "fill":
                _, off, n, value = op
                n = min(n, WINDOW_WORDS - off)
                fast.fill(BASE + off * WORD, n, value)
                for i in range(n):
                    ref.write_word(BASE + (off + i) * WORD, value)
            elif op[0] == "copy":
                _, src, dst, n = op
                n = min(n, WINDOW_WORDS - src, WINDOW_WORDS - dst)
                if n <= 0 or abs(src - dst) < n:
                    continue  # copy_words requires non-overlapping runs
                fast.copy_words(BASE + src * WORD, BASE + dst * WORD, n)
                for i in range(n):
                    ref.write_word(
                        BASE + (dst + i) * WORD,
                        ref.read_word(BASE + (src + i) * WORD),
                    )
            else:
                _, off, value, _ = op
                fast.write_word(BASE + off * WORD, value)
                ref.write_word(BASE + off * WORD, value)

        # Bulk read vs per-word read, on both memories, over spans the
        # generator points at boundaries.
        for _ in range(4):
            off = data.draw(_edge_offsets)
            n = min(data.draw(st.integers(1, 3 * CHUNK_WORDS)),
                    WINDOW_WORDS - off)
            span = fast.read_words(BASE + off * WORD, n)
            assert span == [
                ref.read_word(BASE + (off + i) * WORD) for i in range(n)
            ]
        # Full-window byte equality between the two histories.
        assert (fast.read_words(BASE, WINDOW_WORDS)
                == ref.read_words(BASE, WINDOW_WORDS))

    def test_zero_fill_stays_sparse(self):
        mem = _dual_memory()
        mem.fill(BASE, WINDOW_WORDS, 0)
        assert mem._chunk_maps == [{}, {}]
        assert mem.read_words(BASE, 4) == [0, 0, 0, 0]


# ----------------------------------------------------------------------
# Caches.touch_block batched loop vs per-line reference
# ----------------------------------------------------------------------
class _RecordingSnooper:
    def __init__(self):
        self.txns = []

    def __call__(self, txn):
        self.txns.append((txn.kind, txn.paddr, txn.value, txn.nwords,
                          txn.initiator))


def _observable(platform):
    caches = platform.caches
    return (
        platform.clock.now,
        caches.l1.state_dict(),
        caches.l2.state_dict(),
        list(caches.l1._sets.items()),
        list(caches.l2._sets.items()),
        platform.bus.state_dict(),
        dict(platform.dram._open_rows),
    )


def _line_window(platform):
    line_bytes = platform.caches.l1.line_bytes
    return line_bytes, 512  # lines in the exercised window


_touch_ops = st.lists(
    st.tuples(
        st.booleans(),                # is_write
        st.integers(0, 511),          # line index in window
        st.integers(0, 7),            # word offset inside the line
        st.integers(1, 192),          # word count (spans several lines)
    ),
    min_size=1,
    max_size=20,
)

_warm_ops = st.lists(
    st.tuples(st.booleans(), st.integers(0, 511)),
    max_size=24,
)


class TestTouchBlockAgainstPerLineReference:
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(_warm_ops, _touch_ops)
    def test_batched_path_matches_reference(self, warm, ops):
        fast_platform = small_platform()
        ref_platform = small_platform()
        recorders = []
        for platform in (fast_platform, ref_platform):
            rec = _RecordingSnooper()
            platform.bus.attach_snooper(rec)
            recorders.append(rec)

        for platform in (fast_platform, ref_platform):
            caches = platform.caches
            line_bytes = caches.l1.line_bytes
            for is_write, line_index in warm:
                paddr = BASE + line_index * line_bytes
                if is_write:
                    caches.write(paddr, 0x55, cacheable=True)
                else:
                    caches.read(paddr, cacheable=True)

        line_bytes = fast_platform.caches.l1.line_bytes
        for is_write, line_index, word_off, nwords in ops:
            paddr = BASE + line_index * line_bytes + word_off * WORD
            # Vectorized path.
            fast_platform.caches.touch_block(paddr, nwords, is_write)
            # Per-line reference path (the documented fallback).
            caches = ref_platform.caches
            first = paddr & caches._line_mask
            last = (paddr + (nwords - 1) * WORD) & caches._line_mask
            for line in range(first, last + 1, line_bytes):
                if is_write:
                    caches._install_dirty(line)
                else:
                    caches._ensure_resident(line, initiator="cpu")

        assert _observable(fast_platform) == _observable(ref_platform)
        assert recorders[0].txns == recorders[1].txns


# ----------------------------------------------------------------------
# Coalesced block-write bitmap scan vs per-word bitmap checks
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def storm_system():
    from repro.tools import perf
    from tests.test_tools_macroops import build_storm

    system, op = build_storm()
    for _ in range(8):  # populate pipeline, warm bitmap cache
        op()
    return system


class TestBlockWritesOverMonitoredPages:
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow, HealthCheck.function_scoped_fixture,
        ],
    )
    @given(st.integers(-520, 520), st.integers(1, 600))
    def test_block_capture_hits_match_per_word_bitmap(
        self, storm_system, start_off, nwords
    ):
        """``capture_block``'s coalesced ``words_for_range`` scan must
        flag exactly the words a per-word ``bitmap.locate`` walk flags —
        including spans straddling the monitored page's edges."""
        system = storm_system
        mbm = system.mbm
        init = system.kernel.procs.current
        anchor = init.cred_pa & ~7
        start = anchor + start_off * WORD
        peek = system.platform.bus.peek

        expected = 0
        for i in range(nwords):
            paddr = start + i * WORD
            if not mbm.bitmap.covers(paddr):
                continue
            word_addr, bit = mbm.bitmap.locate(paddr)
            if (peek(word_addr) >> bit) & 1:
                expected += 1

        before = mbm.decision._checked, mbm.decision._hits
        system.platform.bus.write_block(start, nwords, initiator="cpu")
        after = mbm.decision._checked, mbm.decision._hits
        assert after[1] - before[1] == expected
