"""Tests for the package's public API surface."""

import importlib

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.2.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_builders_exposed(self):
        assert callable(repro.build_native)
        assert callable(repro.build_kvm_guest)
        assert callable(repro.build_hypernel)
        assert callable(repro.build_system)

    def test_monitors_exposed(self):
        for name in ("CredIntegrityMonitor", "DentryIntegrityMonitor",
                     "WholeObjectMonitor", "ExternalOnlyMonitor"):
            assert hasattr(repro, name)

    def test_analysis_entry_points(self):
        from repro.analysis import run_figure6, run_table1, run_table2
        assert callable(run_table1)
        assert callable(run_figure6)
        assert callable(run_table2)


class TestSubpackagesImportable:
    @pytest.mark.parametrize("module", [
        "repro.hw", "repro.arch", "repro.kernel", "repro.hypervisor",
        "repro.core", "repro.core.mbm", "repro.security", "repro.attacks",
        "repro.workloads", "repro.analysis", "repro.tools", "repro.cli",
    ])
    def test_import(self, module):
        importlib.import_module(module)


class TestDocstrings:
    def test_every_public_module_documented(self):
        import pathlib
        root = pathlib.Path(repro.__file__).parent
        undocumented = []
        for path in root.rglob("*.py"):
            text = path.read_text()
            stripped = text.lstrip()
            if not (stripped.startswith('"""') or stripped.startswith("'''")):
                undocumented.append(str(path.relative_to(root)))
        assert undocumented == [], undocumented


class TestEl2VectorContract:
    def test_default_stage2_handler_reraises(self):
        from repro.errors import Stage2Fault
        from repro.arch.exceptions import EL2Vector

        class Minimal(EL2Vector):
            def handle_hvc(self, cpu, func, args):
                return 0

            def handle_trapped_msr(self, cpu, register, value):
                pass

        fault = Stage2Fault("test", ipa=0x8000_0000, is_write=False)
        with pytest.raises(Stage2Fault):
            Minimal().handle_stage2_fault(None, fault)
