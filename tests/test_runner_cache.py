"""Cache-key invalidation for the content-addressed result cache.

The key recipe (DESIGN.md §5b) hashes the cell parameters together with
every ``CostModel``/``OpCosts`` constant and the package version:
anything that can change cycle accounting must miss; an unchanged rerun
must hit without dispatching any work.
"""

import dataclasses
import json
import os

import pytest

from repro.config import CostModel, PlatformConfig
from repro.tools.runner import (
    CACHE_SCHEMA,
    Cell,
    CellCache,
    cache_contents,
    cache_key,
    prune_cache,
    run_cells,
)


def small_config(**cost_overrides):
    costs = CostModel(**cost_overrides)
    return PlatformConfig(
        dram_bytes=64 * 1024 * 1024,
        secure_bytes=8 * 1024 * 1024,
        costs=costs,
    )


def echo_cell(value="x", config=None, **spec_extra):
    return Cell(
        kind="selftest",
        environment="test",
        workload="echo",
        spec={"mode": "echo", "value": value, **spec_extra},
        platform_config=config,
    )


class TestCacheKey:
    def test_same_inputs_same_key(self):
        assert cache_key(echo_cell(config=small_config())) == cache_key(
            echo_cell(config=small_config())
        )

    def test_cost_model_constant_perturbation_changes_key(self):
        base = cache_key(echo_cell(config=small_config()))
        perturbed = cache_key(echo_cell(config=small_config(l1_hit=5)))
        assert base != perturbed

    def test_spec_scale_perturbation_changes_key(self):
        base = cache_key(echo_cell(scale=0.25))
        assert cache_key(echo_cell(scale=0.5)) != base

    def test_environment_and_kind_distinguish_cells(self):
        cell = echo_cell()
        other_env = dataclasses.replace(cell, environment="other")
        other_kind = dataclasses.replace(cell, kind="table1")
        assert cache_key(cell) != cache_key(other_env)
        assert cache_key(cell) != cache_key(other_kind)

    def test_uncacheable_cell_has_no_key(self):
        assert cache_key(dataclasses.replace(echo_cell(), cacheable=False)) is None

    def test_non_json_spec_has_no_key(self):
        assert cache_key(echo_cell(apps=[object()])) is None


class _CountingExecutor:
    """Executor stub: counts dispatches, runs cells in-process."""

    def __init__(self):
        self.submissions = 0

    def __call__(self, jobs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, *args):
        self.submissions += 1
        from concurrent.futures import Future

        future = Future()
        try:
            future.set_result(fn(*args))
        except Exception as exc:  # pragma: no cover - failure paths
            future.set_exception(exc)
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestCacheBehaviour:
    def test_unchanged_rerun_hits_with_zero_dispatches(self, tmp_path):
        cache = CellCache(tmp_path)
        cells = [echo_cell(value=i, config=small_config()) for i in range(3)]

        # Explicit pool: ``auto`` would keep a 3-cell grid serial and
        # this test counts pool submissions.
        first = _CountingExecutor()
        cold = run_cells(cells, jobs=2, cache=cache, executor_factory=first,
                         backend="pool")
        assert first.submissions == 3
        assert cache.stores == 3

        second = _CountingExecutor()
        warm = run_cells(cells, jobs=2, cache=cache, executor_factory=second,
                         backend="pool")
        assert second.submissions == 0, "warm cache must dispatch nothing"
        assert cache.hits == 3
        assert warm == cold

    def test_cost_constant_perturbation_misses(self, tmp_path):
        cache = CellCache(tmp_path)
        run_cells([echo_cell(config=small_config())], cache=cache)
        executor = _CountingExecutor()
        run_cells(
            [echo_cell(config=small_config(dram_row_hit=71)),
             echo_cell(config=small_config())],
            jobs=2,
            cache=cache,
            executor_factory=executor,
        )
        # Perturbed cell recomputed; unchanged cell answered from cache.
        assert executor.submissions == 0  # single pending cell runs serially
        assert cache.hits == 1

    def test_scale_perturbation_misses(self, tmp_path):
        cache = CellCache(tmp_path)
        run_cells([echo_cell(scale=0.25)], cache=cache)
        assert cache.lookup(echo_cell(scale=0.5)) is None
        assert cache.lookup(echo_cell(scale=0.25)) is not None

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = CellCache(tmp_path)
        cell = echo_cell()
        run_cells([cell], cache=cache)
        path = cache._path(cache_key(cell))
        path.write_text("{not json")
        assert cache.lookup(cell) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = CellCache(tmp_path)
        cell = echo_cell()
        run_cells([cell], cache=cache)
        path = cache._path(cache_key(cell))
        entry = json.loads(path.read_text())
        entry["schema"] = CACHE_SCHEMA + 1
        path.write_text(json.dumps(entry))
        assert cache.lookup(cell) is None

    def test_uncacheable_cell_always_recomputes(self, tmp_path):
        cache = CellCache(tmp_path)
        cell = dataclasses.replace(echo_cell(), cacheable=False)
        run_cells([cell], cache=cache)
        assert cache.stores == 0
        assert cache.lookup(cell) is None


def seed_cache_dir(tmp_path, ages_days):
    """Fabricate result entries and one boot snapshot with set mtimes.

    ``ages_days`` maps filename stem -> age in days; names starting
    with ``snap`` become ``snapshots/*.snap`` files.  Every file is
    100 bytes so byte budgets are easy to reason about.  Returns
    ``now`` (the reference timestamp the ages are relative to).
    """
    now = 1_700_000_000.0
    (tmp_path / "snapshots").mkdir(exist_ok=True)
    for stem, age in ages_days.items():
        if stem.startswith("snap"):
            path = tmp_path / "snapshots" / f"{stem}.snap"
        else:
            path = tmp_path / f"{stem}.json"
        path.write_bytes(b"x" * 100)
        stamp = now - age * 86400.0
        os.utime(path, (stamp, stamp))
    return now


class TestCacheMaintenance:
    def test_contents_inventories_results_and_snapshots(self, tmp_path):
        seed_cache_dir(tmp_path, {"aa": 1, "bb": 2, "snap1": 3})
        inventory = cache_contents(tmp_path)
        kinds = sorted(e["kind"] for e in inventory["entries"])
        assert kinds == ["result", "result", "snapshot"]
        assert inventory["total_bytes"] == 300
        assert inventory["directory"] == str(tmp_path)

    def test_contents_of_missing_directory_is_empty(self, tmp_path):
        inventory = cache_contents(tmp_path / "never-created")
        assert inventory["entries"] == []
        assert inventory["total_bytes"] == 0

    def test_prune_by_age_removes_only_stale_entries(self, tmp_path):
        now = seed_cache_dir(tmp_path, {"young": 1, "old": 30, "snapold": 40})
        removed = prune_cache(tmp_path, max_age_days=7, now=now)
        assert sorted(os.path.basename(p) for p in removed) == [
            "old.json", "snapold.snap"]
        survivors = [e["path"] for e in cache_contents(tmp_path)["entries"]]
        assert survivors == [str(tmp_path / "young.json")]

    def test_prune_by_bytes_evicts_oldest_first(self, tmp_path):
        now = seed_cache_dir(tmp_path, {"newest": 1, "middle": 5, "oldest": 9})
        removed = prune_cache(tmp_path, max_bytes=250, now=now)
        assert [os.path.basename(p) for p in removed] == ["oldest.json"]
        removed = prune_cache(tmp_path, max_bytes=100, now=now)
        assert [os.path.basename(p) for p in removed] == ["middle.json"]

    def test_prune_without_limits_removes_nothing(self, tmp_path):
        now = seed_cache_dir(tmp_path, {"aa": 1, "snap1": 400})
        assert prune_cache(tmp_path, now=now) == []
        assert len(cache_contents(tmp_path)["entries"]) == 2

    def test_pruned_entry_is_recomputed_transparently(self, tmp_path):
        cache = CellCache(tmp_path)
        cell = echo_cell(config=small_config())
        run_cells([cell], cache=cache)
        assert cache.lookup(cell) is not None
        prune_cache(tmp_path, max_age_days=0.0, now=9_999_999_999.0)
        assert cache.lookup(cell) is None  # miss, not an error
        [payload] = run_cells([cell], cache=cache)  # recomputed cleanly
        assert payload["value"] == "x"
