"""Parallel/serial equivalence of the experiment runner.

The contract (ISSUE 2, DESIGN.md §5b): fanning cells out over worker
processes — or answering them from the content-addressed cache — must
produce *byte-identical* formatted results to the serial path.
"""

import pytest

from repro.analysis.figures import run_figure6
from repro.analysis.monitoring import run_table2
from repro.analysis.tables import run_table1
from repro.config import PlatformConfig
from repro.tools.runner import CellCache

#: Reduced op set: keeps the three-systems sweep fast while still
#: covering a syscall path, a signal path and a page-table-heavy path.
REDUCED_OPS = ["syscall stat", "signal install", "mmap"]


def small_platform_config():
    return PlatformConfig(
        dram_bytes=64 * 1024 * 1024, secure_bytes=8 * 1024 * 1024
    )


def _table1(**kwargs):
    return run_table1(
        platform_factory=small_platform_config,
        warmup=2,
        iterations=4,
        ops=REDUCED_OPS,
        **kwargs,
    )


class TestParallelEquivalence:
    def test_table1_jobs4_matches_jobs1_byte_identically(self):
        # Backends pinned explicitly: ``auto`` keeps tiny grids serial
        # now, and this test exists to compare the dispatch paths.
        serial = _table1(jobs=1, backend="serial")
        parallel = _table1(jobs=4, backend="pool")
        assert parallel.rows == serial.rows
        assert parallel.format() == serial.format()
        assert parallel.format(include_paper=False) == serial.format(
            include_paper=False
        )

    def test_figure6_parallel_matches_serial(self):
        serial = run_figure6(
            scale=0.02, platform_factory=small_platform_config, jobs=1,
            backend="serial",
        )
        parallel = run_figure6(
            scale=0.02, platform_factory=small_platform_config, jobs=3,
            backend="pool",
        )
        assert parallel.raw_us == serial.raw_us
        assert parallel.normalized == serial.normalized
        assert parallel.format() == serial.format()

    def test_table2_parallel_matches_serial(self):
        serial = run_table2(
            scale=0.02, platform_factory=small_platform_config, jobs=1,
            backend="serial",
        )
        parallel = run_table2(
            scale=0.02, platform_factory=small_platform_config, jobs=2,
            backend="pool",
        )
        assert parallel.counts == serial.counts
        assert parallel.format() == serial.format()


class TestAutoBackendThreshold:
    """``auto`` keeps tiny grids serial (ISSUE 7: 3-cell table1 ran
    slower under the 4-job pool than serial, so parallel dispatch must
    not engage below ``AUTO_MIN_CELLS`` uncached cells)."""

    def test_resolve_auto_small_pending_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)
        from repro.tools.runner import AUTO_MIN_CELLS, _resolve_backend

        assert _resolve_backend(
            "auto", 4, None, pending=AUTO_MIN_CELLS - 1) == "serial"
        assert _resolve_backend(
            "auto", 4, None, pending=AUTO_MIN_CELLS) != "serial"
        # Explicit choices are not subject to the threshold.
        assert _resolve_backend("pool", 4, None, pending=1) == "pool"

    def test_auto_small_grid_never_builds_a_pool(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)
        from repro.analysis.tables import table1_cells
        from repro.tools.runner import run_cells

        def exploding_factory(jobs):  # pragma: no cover - must not run
            raise AssertionError(
                "auto must stay serial below the min-cells threshold"
            )

        cells = table1_cells(
            platform_factory=small_platform_config,
            warmup=2,
            iterations=4,
            ops=REDUCED_OPS,
        )
        payloads = run_cells(
            cells, jobs=4, backend="auto",
            executor_factory=exploding_factory,
        )
        assert len(payloads) == len(cells)
        assert all(p is not None for p in payloads)

    def test_auto_large_pending_engages_parallel_machinery(
        self, monkeypatch
    ):
        monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)
        from repro.tools.runner import AUTO_MIN_CELLS, _resolve_backend

        calls = []

        def spy_factory(jobs):
            calls.append(jobs)
            raise ImportError("spy: decline the pool, fall back serial")

        # Resolution alone: with enough pending cells and a factory
        # (which forces the pool path), auto picks the pool.
        assert _resolve_backend(
            "auto", 4, spy_factory, pending=AUTO_MIN_CELLS) == "pool"


class TestCacheEquivalence:
    def test_cache_hit_returns_identical_result_contents(self, tmp_path):
        cache = CellCache(tmp_path)
        cold = _table1(jobs=1, cache=cache)
        assert cache.stores == 3 and cache.hits == 0

        warm = _table1(jobs=1, cache=cache)
        assert cache.hits == 3
        assert warm.rows == cold.rows
        assert warm.format() == cold.format()

    def test_warm_cache_parallel_run_dispatches_nothing(self, tmp_path):
        cache = CellCache(tmp_path)
        cold = _table1(jobs=1, cache=cache)

        def exploding_factory(jobs):  # pragma: no cover - must not run
            raise AssertionError("warm cache must not create a pool")

        # jobs=4 with a fully warm cache: the executor factory (and any
        # in-process execution) is never reached.
        from repro.analysis.tables import table1_cells
        from repro.tools.runner import run_cells

        cells = table1_cells(
            platform_factory=small_platform_config,
            warmup=2,
            iterations=4,
            ops=REDUCED_OPS,
        )
        payloads = run_cells(
            cells, jobs=4, cache=cache, executor_factory=exploding_factory
        )
        assert [p["rows"] for p in payloads] == [
            {op: cold.rows[op][cell.environment] for op in REDUCED_OPS}
            for cell in cells
        ]
