"""Parallel/serial equivalence of the experiment runner.

The contract (ISSUE 2, DESIGN.md §5b): fanning cells out over worker
processes — or answering them from the content-addressed cache — must
produce *byte-identical* formatted results to the serial path.
"""

import pytest

from repro.analysis.figures import run_figure6
from repro.analysis.monitoring import run_table2
from repro.analysis.tables import run_table1
from repro.config import PlatformConfig
from repro.tools.runner import CellCache

#: Reduced op set: keeps the three-systems sweep fast while still
#: covering a syscall path, a signal path and a page-table-heavy path.
REDUCED_OPS = ["syscall stat", "signal install", "mmap"]


def small_platform_config():
    return PlatformConfig(
        dram_bytes=64 * 1024 * 1024, secure_bytes=8 * 1024 * 1024
    )


def _table1(**kwargs):
    return run_table1(
        platform_factory=small_platform_config,
        warmup=2,
        iterations=4,
        ops=REDUCED_OPS,
        **kwargs,
    )


class TestParallelEquivalence:
    def test_table1_jobs4_matches_jobs1_byte_identically(self):
        serial = _table1(jobs=1)
        parallel = _table1(jobs=4)
        assert parallel.rows == serial.rows
        assert parallel.format() == serial.format()
        assert parallel.format(include_paper=False) == serial.format(
            include_paper=False
        )

    def test_figure6_parallel_matches_serial(self):
        serial = run_figure6(
            scale=0.02, platform_factory=small_platform_config, jobs=1
        )
        parallel = run_figure6(
            scale=0.02, platform_factory=small_platform_config, jobs=3
        )
        assert parallel.raw_us == serial.raw_us
        assert parallel.normalized == serial.normalized
        assert parallel.format() == serial.format()

    def test_table2_parallel_matches_serial(self):
        serial = run_table2(
            scale=0.02, platform_factory=small_platform_config, jobs=1
        )
        parallel = run_table2(
            scale=0.02, platform_factory=small_platform_config, jobs=2
        )
        assert parallel.counts == serial.counts
        assert parallel.format() == serial.format()


class TestCacheEquivalence:
    def test_cache_hit_returns_identical_result_contents(self, tmp_path):
        cache = CellCache(tmp_path)
        cold = _table1(jobs=1, cache=cache)
        assert cache.stores == 3 and cache.hits == 0

        warm = _table1(jobs=1, cache=cache)
        assert cache.hits == 3
        assert warm.rows == cold.rows
        assert warm.format() == cold.format()

    def test_warm_cache_parallel_run_dispatches_nothing(self, tmp_path):
        cache = CellCache(tmp_path)
        cold = _table1(jobs=1, cache=cache)

        def exploding_factory(jobs):  # pragma: no cover - must not run
            raise AssertionError("warm cache must not create a pool")

        # jobs=4 with a fully warm cache: the executor factory (and any
        # in-process execution) is never reached.
        from repro.analysis.tables import table1_cells
        from repro.tools.runner import run_cells

        cells = table1_cells(
            platform_factory=small_platform_config,
            warmup=2,
            iterations=4,
            ops=REDUCED_OPS,
        )
        payloads = run_cells(
            cells, jobs=4, cache=cache, executor_factory=exploding_factory
        )
        assert [p["rows"] for p in payloads] == [
            {op: cold.rows[op][cell.environment] for op in REDUCED_OPS}
            for cell in cells
        ]
