"""Worker-failure handling: retry once, then fail loudly naming the cell.

Fault injection uses the runner's test-only ``selftest`` cell kind,
whose ``fail_until_marker`` mode fails on the first attempt (dropping a
marker file) and succeeds on the retry — observable across processes.
"""

import pytest

from repro.tools.runner import Cell, RunnerError, run_cells


def fail_once_cell(tmp_path, name="flaky"):
    return Cell(
        kind="selftest",
        environment=name,
        workload="fault-injection",
        spec={"mode": "fail_until_marker", "marker": str(tmp_path / f"{name}.marker")},
        cacheable=False,
    )


def always_fail_cell(name="doomed"):
    return Cell(
        kind="selftest",
        environment=name,
        workload="fault-injection",
        spec={"mode": "fail"},
        cacheable=False,
    )


class TestSerialFailures:
    def test_transient_failure_is_retried_once(self, tmp_path):
        cell = fail_once_cell(tmp_path)
        [payload] = run_cells([cell], jobs=1)
        assert payload["value"] == "ok after retry"
        assert (tmp_path / "flaky.marker").exists()

    def test_persistent_failure_raises_runner_error_naming_cell(self):
        cell = always_fail_cell()
        with pytest.raises(RunnerError, match=r"selftest:doomed:fault-injection"):
            run_cells([cell], jobs=1)

    def test_runner_error_carries_the_cell(self):
        cell = always_fail_cell()
        with pytest.raises(RunnerError) as excinfo:
            run_cells([cell], jobs=1)
        assert excinfo.value.cell is cell
        assert excinfo.value.__cause__ is not None

    def test_unknown_kind_rejected(self):
        with pytest.raises(RunnerError, match="unknown cell kind"):
            run_cells([Cell(kind="nope", environment="x", workload="y")])


class TestPoolFailures:
    def test_transient_worker_failure_is_retried_once(self, tmp_path):
        cells = [fail_once_cell(tmp_path, "a"), fail_once_cell(tmp_path, "b")]
        payloads = run_cells(cells, jobs=2)
        assert [p["value"] for p in payloads] == ["ok after retry"] * 2

    def test_persistent_worker_failure_surfaces_instead_of_hanging(self):
        cells = [always_fail_cell("one"), always_fail_cell("two")]
        with pytest.raises(RunnerError, match=r"selftest:one:fault-injection"):
            run_cells(cells, jobs=2)

    def test_timeout_raises_runner_error_naming_cell(self):
        cells = [
            Cell(kind="selftest", environment=f"sleepy{i}", workload="nap",
                 spec={"mode": "sleep", "seconds": 2.0}, cacheable=False)
            for i in range(2)
        ]
        # Explicit pool: ``auto`` would stay serial for a 2-cell grid.
        with pytest.raises(RunnerError, match=r"selftest:sleepy0:nap.*timed out"):
            run_cells(cells, jobs=2, timeout=0.2, backend="pool")

    def test_nonpositive_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_cells([], jobs=0)
