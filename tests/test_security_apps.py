"""Unit tests for security applications, hooks and shadow tracking."""

import pytest

from repro.errors import SecurityViolation
from repro.kernel.objects import CRED, DENTRY
from repro.security.app import RegionTemplate, SecurityApp
from repro.security.baseline_page import WholeObjectMonitor
from repro.security.cred_monitor import CredIntegrityMonitor


class TestSecurityAppBase:
    def test_templates_select_layouts(self):
        app = SecurityApp("t", [RegionTemplate("cred", "sensitive")])
        assert app.wants(CRED)
        assert not app.wants(DENTRY)

    def test_sensitive_regions(self):
        app = SecurityApp("t", [RegionTemplate("cred", "sensitive")])
        regions = app.regions_for(CRED, 0x8000_0000)
        assert regions == CRED.sensitive_ranges(0x8000_0000)

    def test_whole_regions(self):
        app = SecurityApp("t", [RegionTemplate("cred", "whole")])
        assert app.regions_for(CRED, 0x8000_0000) == [(0x8000_0000, CRED.size_bytes)]

    def test_announced_write_event_pairs_cleanly(self):
        app = SecurityApp("t", [RegionTemplate("cred", "sensitive")])
        app.on_region_registered(0x1000, 16, [5, 6])
        app.on_authorized(0x1000, 7)
        app.on_event(0x1000, 7)
        assert not app.alerts

    def test_unannounced_event_alerts(self):
        app = SecurityApp("t", [RegionTemplate("cred", "sensitive")])
        app.on_region_registered(0x1000, 16, [5, 6])
        app.on_event(0x1008, 999)
        assert len(app.alerts) == 1
        assert app.alerts[0].expected == 6

    def test_unannounced_event_with_unchanged_value_alerts(self):
        """Even a write that does not change the value is suspicious if
        no kernel code path announced it."""
        app = SecurityApp("t", [RegionTemplate("cred", "sensitive")])
        app.on_region_registered(0x1000, 16, [5, 6])
        app.on_event(0x1000, 5)
        assert len(app.alerts) == 1

    def test_delayed_batched_events_pair_in_order(self):
        """Interrupt coalescing delivers events late; the pending queue
        pairs them with the announced writes in program order."""
        app = SecurityApp("t", [RegionTemplate("cred", "sensitive")])
        app.on_region_registered(0x1000, 8, [0])
        app.on_authorized(0x1000, 1)
        app.on_authorized(0x1000, 2)
        app.on_authorized(0x1000, 3)
        for value in (1, 2, 3):
            app.on_event(0x1000, value)
        assert not app.alerts

    def test_lost_event_resynchronizes(self):
        """A ring-overflow-dropped event must not desynchronize pairing."""
        app = SecurityApp("t", [RegionTemplate("cred", "sensitive")])
        app.on_region_registered(0x1000, 8, [0])
        app.on_authorized(0x1000, 1)
        app.on_authorized(0x1000, 2)
        app.on_event(0x1000, 2)  # the event for value 1 was lost
        assert not app.alerts
        assert app.stats.get("skipped_events") == 1

    def test_one_attack_one_alert(self):
        app = SecurityApp("t", [RegionTemplate("cred", "sensitive")])
        app.on_region_registered(0x1000, 8, [5])
        app.on_event(0x1000, 9)
        app.on_event(0x1000, 9)  # same hostile value re-observed
        assert len(app.alerts) == 1

    def test_unregister_clears_shadow(self):
        app = SecurityApp("t", [RegionTemplate("cred", "sensitive")])
        app.on_region_registered(0x1000, 8, [5])
        app.on_region_unregistered(0x1000, 8)
        app.on_event(0x1000, 9)  # unknown address: counted, no alert
        assert not app.alerts
        assert app.event_count == 1


class TestCredMonitorPolicy:
    def test_escalation_to_root_flagged_specifically(self):
        monitor = CredIntegrityMonitor()
        base = 0x2000 + CRED.field("uid").byte_offset
        snapshot = [1000] * 13
        monitor.on_region_registered(base, 13 * 8, snapshot)
        monitor.on_event(base, 0)  # uid 1000 -> 0 unannounced
        reasons = [alert.reason for alert in monitor.alerts]
        assert any("escalation" in reason for reason in reasons)

    def test_announced_setuid_not_flagged(self):
        monitor = CredIntegrityMonitor()
        base = 0x2000 + CRED.field("uid").byte_offset
        monitor.on_region_registered(base, 13 * 8, [1000] * 13)
        monitor.on_authorized(base, 0)
        monitor.on_event(base, 0)
        assert not monitor.alerts


class TestEndToEndMonitoring:
    def test_benign_workload_raises_no_alerts(self, monitored_system):
        system = monitored_system
        init = system.spawn_init()
        kernel = system.kernel
        kernel.vfs.mkdir_p("/tmp")
        kernel.sys.creat(init, "/tmp/f")
        kernel.sys.stat(init, "/tmp/f")
        kernel.sys.setuid(init, 1000)
        child = kernel.sys.fork(init)
        kernel.procs.context_switch(child)
        kernel.sys.exit(child)
        kernel.procs.context_switch(init)
        for app in system.monitors:
            assert app.alerts == [], app.alerts

    def test_direct_cred_write_detected(self, monitored_system):
        system = monitored_system
        init = system.spawn_init()
        kernel = system.kernel
        kernel.sys.setuid(init, 1000)
        app = system.monitor_by_name("cred_monitor")
        # The exploit primitive: a raw store, not a kernel code path.
        kernel.cpu.write(
            kernel.linear_map.kva(
                init.cred_pa + CRED.field("euid").byte_offset
            ),
            0,
        )
        assert len(app.alerts) >= 1

    def test_direct_dentry_write_detected(self, monitored_system):
        system = monitored_system
        init = system.spawn_init()
        kernel = system.kernel
        node = kernel.vfs.create("/victim")
        app = system.monitor_by_name("dentry_monitor")
        kernel.cpu.write(
            kernel.linear_map.kva(
                node.dentry_pa + DENTRY.field("d_inode").byte_offset
            ),
            0xBAD,
        )
        assert len(app.alerts) >= 1

    def test_whole_object_monitor_counts_hot_traffic(self, platform_config):
        from repro.core.hypernel import build_hypernel

        system = build_hypernel(
            platform_config=platform_config,
            monitors=[WholeObjectMonitor(("dentry",))],
        )
        init = system.spawn_init()
        kernel = system.kernel
        kernel.vfs.mkdir_p("/tmp")
        kernel.sys.creat(init, "/tmp/f")
        app = system.monitors[0]
        events_before = app.event_count
        for _ in range(10):
            kernel.sys.stat(init, "/tmp/f")  # pure lockref churn
        assert app.event_count > events_before

    def test_word_monitor_ignores_hot_traffic(self, monitored_system):
        system = monitored_system
        init = system.spawn_init()
        kernel = system.kernel
        kernel.vfs.mkdir_p("/tmp")
        kernel.sys.creat(init, "/tmp/f")
        app = system.monitor_by_name("dentry_monitor")
        events_before = app.event_count
        for _ in range(10):
            kernel.sys.stat(init, "/tmp/f")
        assert app.event_count == events_before

    def test_hook_requires_registered_sid(self, monitored_system):
        from repro.security.hooks import MonitorHookStub

        stub = MonitorHookStub(monitored_system.kernel)
        with pytest.raises(SecurityViolation):
            stub.add_app(CredIntegrityMonitor())  # no SID assigned
