"""Tests for the adversarial hypercall fuzzer (repro.security.fuzz).

Covers the three legs of the subsystem:

* the shared invariant specification and the snapshot-grounded second
  verification channel agree with the live auditor on real machines
  (boot and post-attack states, both linear-map modes);
* the differential gate catches the bookkeeping-desync bug class that
  either channel alone is blind to (satellite of this PR);
* the state machine itself — short seeded runs stay clean, recorded
  corpus traces replay clean, and a deliberately seeded policy hole is
  caught immediately (the fuzzer is not vacuous).
"""

import json

import pytest

pytest.importorskip("hypothesis")

from repro.attacks import FUZZABLE_ATTACKS
from repro.core import hypercalls as hc
from repro.core.hypersec import Hypersec
from repro.security.fuzz.differential import differential_audit
from repro.security.fuzz.invariants import run_invariants
from repro.security.fuzz.machine import (
    LAST_TRACE,
    FuzzContext,
    FuzzViolation,
    apply_op,
    boot_snapshot,
    load_trace,
    replay_corpus,
    replay_ops,
    run_fuzz,
    save_trace,
)
from repro.security.fuzz.snapshot_checker import SnapshotEvidence
from repro.state import capture_snapshot, restore_from_snapshot

CORPUS_DIR = "tests/corpus"


def fresh_system(profile):
    return restore_from_snapshot(boot_snapshot(profile))


# ----------------------------------------------------------------------
# Channel agreement on real machines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("profile", ["section", "page"])
class TestChannelAgreement:
    def test_boot_state_gates_clean(self, profile):
        system = fresh_system(profile)
        result = differential_audit(system)
        assert result.clean, str(result)
        assert result.live.clean and result.offline.clean

    def test_offline_channel_counts_real_structures(self, profile):
        system = fresh_system(profile)
        evidence = SnapshotEvidence(capture_snapshot(system))
        report = run_invariants(evidence)
        assert report.clean
        assert report.tables_walked == len(system.hypersec.table_pages)
        assert report.leaves_checked > 0

    def test_post_attack_states_gate_clean(self, profile):
        system = fresh_system(profile)
        for attack_cls in FUZZABLE_ATTACKS.values():
            outcome = attack_cls().mount(system)
            assert outcome.blocked and not outcome.succeeded
            result = differential_audit(system)
            assert result.clean, (
                f"after {attack_cls.name}: {result}"
            )


# ----------------------------------------------------------------------
# The differential gate catches what either channel alone misses
# ----------------------------------------------------------------------
class TestDifferentialDesync:
    def test_dropped_table_registration_is_caught(self):
        """Satellite: a table page silently vanishing from Hypersec's
        bookkeeping leaves the live auditor blind (the lost table is
        simply not walked and not defended) — only the raw-memory
        channel still sees the structure and disagrees."""
        system = fresh_system("section")
        hypersec = system.hypersec
        victim = sorted(hypersec.linear_tables)[1]
        hypersec.table_pages.discard(victim)

        # The live channel alone stays clean: exactly the blind spot.
        assert hypersec.audit().clean

        result = differential_audit(system)
        assert not result.clean
        kinds = {d.kind for d in result.disagreements}
        assert "unregistered-table" in kinds, str(result)

    def test_clean_after_restore(self):
        # The desync above must not leak into later tests: every test
        # restores its own machine from the cached snapshot.
        assert differential_audit(fresh_system("section")).clean


# ----------------------------------------------------------------------
# The state machine
# ----------------------------------------------------------------------
class TestFuzzMachine:
    def test_smoke_section(self):
        stats = run_fuzz(profile="section", seed=20260809,
                         max_examples=20, steps=6)
        assert stats.get("violations", 0) == 0
        assert stats.get("differential_disagreements", 0) == 0
        assert stats["ops"] > 0
        # Every example that completed ran the differential gate.
        assert stats["differential_gates"] == stats["examples"]

    def test_smoke_page(self):
        stats = run_fuzz(profile="page", seed=99, max_examples=10, steps=6)
        assert stats.get("violations", 0) == 0
        assert stats["differential_gates"] == stats["examples"]

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            boot_snapshot("huge")

    def test_seeded_policy_hole_is_caught(self, monkeypatch):
        """Meta-test: disable the leaf checks and the fuzzer must flag
        the first invariant-violating write Hypersec then accepts —
        proof the oracle actually bites."""
        monkeypatch.setattr(
            Hypersec, "_check_leaf",
            lambda self, desc_paddr, desc, level, old: hc.HVC_OK,
        )
        ops = [
            {"op": "alloc", "root": True, "flaw": "none", "index": 0},
            {"op": "write", "table": {"kind": "fuzz", "index": 0},
             "slot": 5, "level": 0,
             "desc": {"kind": "leaf", "space": "secure", "index": 0,
                      "writable": True, "executable": False,
                      "user": False, "cacheable": True}},
        ]
        with pytest.raises(FuzzViolation, match="invariant-violating"):
            replay_ops("section", ops)

    def test_denied_writes_change_nothing(self):
        """Direct probe of the executor's side-effect check: a denied
        hostile write leaves the descriptor untouched."""
        ctx = FuzzContext(fresh_system("section"))
        op = {"op": "write", "table": {"kind": "root", "index": 0},
              "slot": 0, "level": 1,
              "desc": {"kind": "leaf", "space": "secure", "index": 0,
                       "writable": True, "executable": False,
                       "user": False, "cacheable": True}}
        assert apply_op(ctx, op) == "denied"
        assert ctx.hypersec.audit().clean


# ----------------------------------------------------------------------
# Corpus replay
# ----------------------------------------------------------------------
class TestCorpus:
    def test_corpus_replays_clean(self):
        totals = replay_corpus(CORPUS_DIR)
        assert totals["corpus_files"] >= 3
        assert totals.get("violations", 0) == 0
        assert totals.get("differential_disagreements", 0) == 0
        assert totals["ops"] > 0
        # The traces exercise allowed and denied paths of the major
        # hypercalls, trapped registers and the attack suite.
        assert totals.get("alloc.ok", 0) > 0
        assert totals.get("alloc.denied", 0) > 0
        assert totals.get("region.ok", 0) > 0
        assert totals.get("region.denied", 0) > 0
        assert totals.get("attack.blocked", 0) >= len(FUZZABLE_ATTACKS)
        assert totals.get("msr.trapped", 0) > 0

    def test_trace_roundtrip(self, tmp_path):
        replay_ops("section", [
            {"op": "alloc", "root": False, "flaw": "secure", "index": 0},
            {"op": "mbm"},
        ])
        path = tmp_path / "trace.json"
        save_trace(str(path), "section", note="roundtrip")
        profile, ops = load_trace(str(path))
        assert profile == "section"
        assert [entry["op"] for entry in LAST_TRACE] == ops
        # Stored traces are plain JSON — portable corpus files.
        document = json.loads(path.read_text())
        assert document["schema"] == "repro.fuzz.trace/1"

    def test_corrupt_trace_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other", "ops": []}))
        with pytest.raises(ValueError):
            load_trace(str(path))
