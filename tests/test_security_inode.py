"""Tests for the inode-monitor extension."""

import pytest

from repro.core.hypernel import build_hypernel
from repro.kernel.objects import INODE
from repro.security import InodeIntegrityMonitor
from tests.conftest import small_platform_config


@pytest.fixture
def system():
    system = build_hypernel(
        platform_config=small_platform_config(),
        monitors=[InodeIntegrityMonitor()],
    )
    system.spawn_init()
    return system


class TestInodeMonitor:
    def test_registers_inode_regions(self, system):
        words_before = system.hypersec.monitored_word_count()
        system.kernel.vfs.create("/registered")
        assert system.hypersec.monitored_word_count() > words_before

    def test_benign_file_activity_raises_no_alerts(self, system):
        kernel = system.kernel
        init = kernel.procs.current
        kernel.vfs.mkdir_p("/tmp")
        kernel.sys.creat(init, "/tmp/f")
        handle = kernel.sys.open(init, "/tmp/f")
        kernel.sys.write(init, handle, 4096)
        kernel.sys.fchmod(init, handle, 0o600)
        kernel.sys.fchown(init, handle, 5, 6)
        kernel.sys.close(init, handle)
        kernel.sys.unlink(init, "/tmp/f")
        app = system.monitor_by_name("inode_monitor")
        assert app.alerts == []
        assert app.event_count > 0

    def test_setuid_root_backdoor_detected(self, system):
        """The classic: flip i_mode to setuid-root with a raw write."""
        kernel = system.kernel
        node = kernel.vfs.create("/bin-sh")
        app = system.monitor_by_name("inode_monitor")
        mode_pa = node.inode_pa + INODE.field("i_mode").byte_offset
        kernel.cpu.write(kernel.linear_map.kva(mode_pa), 0o104755)
        assert len(app.alerts) == 1

    def test_i_op_hijack_detected(self, system):
        kernel = system.kernel
        node = kernel.vfs.create("/victim")
        app = system.monitor_by_name("inode_monitor")
        op_pa = node.inode_pa + INODE.field("i_op").byte_offset
        kernel.cpu.write(kernel.linear_map.kva(op_pa), 0xE71)
        assert len(app.alerts) == 1

    def test_hot_refcount_not_monitored(self, system):
        """i_count churn must not generate events (word granularity)."""
        kernel = system.kernel
        node = kernel.vfs.create("/hot")
        app = system.monitor_by_name("inode_monitor")
        events_before = app.event_count
        count_pa = node.inode_pa + INODE.field("i_count").byte_offset
        for index in range(10):
            kernel.kwrite(kernel.linear_map.kva(count_pa), index)
        assert app.event_count == events_before

    def test_combined_with_paper_monitors(self):
        from repro.security import (
            CredIntegrityMonitor,
            DentryIntegrityMonitor,
        )
        system = build_hypernel(
            platform_config=small_platform_config(),
            monitors=[CredIntegrityMonitor(), DentryIntegrityMonitor(),
                      InodeIntegrityMonitor()],
        )
        init = system.spawn_init()
        kernel = system.kernel
        kernel.vfs.mkdir_p("/tmp")
        kernel.sys.creat(init, "/tmp/f")
        sids = {app.sid for app in system.monitors}
        assert len(sids) == 3
        for app in system.monitors:
            assert app.alerts == []
        assert system.hypersec.audit().clean