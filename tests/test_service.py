"""Experiment service: protocol, queue, daemon, client (ISSUE 8).

The contract: results obtained through a ``repro serve`` daemon are
byte-identical to a local serial ``run_cells`` run; warm fork-server
pools are shared across clients (a second tenant's job shows zero cold
boots); integrity is enforced on every streamed payload; a SIGTERM
drain finishes admitted jobs and leaks no child processes; a client
disconnecting mid-job orphans nothing.
"""

import json
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import IntegrityError
from repro.service import daemon as daemon_mod
from repro.service.client import ReproServiceClient, ServiceError
from repro.service.daemon import (
    DaemonConfig,
    ReproDaemon,
    resolve_daemon_backend,
)
from repro.service.protocol import (
    FrameDecoder,
    FrameError,
    cell_from_wire,
    cell_to_wire,
    encode_frame,
)
from repro.service.queue import Job, JobQueue, QuotaExceeded
from repro.config import CostModel, PlatformConfig
from repro.tools import forkserver
from repro.tools.runner import Cell, run_cells, validate_backend

from tests.test_forkserver import live_children  # shared /proc helper


def echo_cell(name, value, cacheable=False):
    return Cell(kind="selftest", environment=name, workload="echo",
                spec={"mode": "echo", "value": value}, cacheable=cacheable)


def sleep_cell(name, seconds):
    return Cell(kind="selftest", environment=name, workload="nap",
                spec={"mode": "sleep", "seconds": seconds}, cacheable=False)


@pytest.fixture
def no_backend_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)


@pytest.fixture
def service(tmp_path, no_backend_env):
    """An in-process daemon on a tmp socket, plus a client factory."""
    sock_path = str(tmp_path / "repro.sock")
    cache_dir = str(tmp_path / "cache")
    config = DaemonConfig(socket_path=sock_path, jobs=2, quota=3,
                          cache_dir=cache_dir)
    daemon = ReproDaemon(config)
    ready = threading.Event()
    thread = threading.Thread(target=daemon.serve, args=(ready,),
                              daemon=True)
    thread.start()
    assert ready.wait(10), "daemon never came up"

    clients = []

    def connect(**kwargs):
        client = ReproServiceClient(socket_path=sock_path, timeout=60,
                                    **kwargs)
        clients.append(client)
        return client.connect()

    yield daemon, connect
    for client in clients:
        client.close()
    daemon.request_shutdown()
    thread.join(timeout=30)
    assert not thread.is_alive(), "daemon failed to drain"


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frames_reassemble_across_arbitrary_chunking(self):
        messages = [{"op": "status"}, {"ok": True, "value": "x" * 500}]
        stream = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(stream), 5):
            out.extend(decoder.feed(stream[i:i + 5]))
        assert out == messages

    def test_oversized_announced_frame_is_rejected(self):
        decoder = FrameDecoder()
        header = struct.pack(">Q", 1 << 60)
        with pytest.raises(FrameError, match="announced"):
            decoder.feed(header)

    def test_non_json_frame_is_rejected(self):
        blob = b"\x80\x04K*."  # a pickle, exactly what must NOT decode
        with pytest.raises(FrameError, match="non-JSON"):
            FrameDecoder().feed(struct.pack(">Q", len(blob)) + blob)

    def test_cell_round_trips_with_platform_config(self):
        cell = Cell(
            kind="table1", environment="hypernel", workload="lmbench",
            spec={"ops": ["mmap"], "warmup": 1, "iterations": 2},
            platform_config=PlatformConfig(
                dram_bytes=64 << 20, secure_bytes=8 << 20,
                costs=CostModel(l1_hit=7),
            ),
        )
        rebuilt = cell_from_wire(json.loads(
            json.dumps(cell_to_wire(cell), sort_keys=True)))
        assert rebuilt == cell
        assert isinstance(rebuilt.platform_config.costs, CostModel)
        assert rebuilt.platform_config.costs.l1_hit == 7

    def test_cell_without_config_round_trips(self):
        cell = echo_cell("a", 3)
        assert cell_from_wire(cell_to_wire(cell)) == cell

    def test_non_json_spec_is_rejected_loudly(self):
        cell = Cell(kind="selftest", environment="a", workload="w",
                    spec={"apps": [object()]}, cacheable=False)
        with pytest.raises(FrameError, match="not JSON-serializable"):
            cell_to_wire(cell)


# ----------------------------------------------------------------------
# Job queue
# ----------------------------------------------------------------------
class TestJobQueue:
    def make_job(self, job_id, client="c", priority=0):
        return Job(job_id=job_id, client=client,
                   cells=[echo_cell("e", 1)], priority=priority)

    def test_priority_order_with_fifo_tiebreak(self):
        queue = JobQueue(quota=10)
        queue.submit(self.make_job("low1", priority=0))
        queue.submit(self.make_job("high", priority=5))
        queue.submit(self.make_job("low2", priority=0))
        order = [queue.next_ready(timeout=0.1).job_id for _ in range(3)]
        assert order == ["high", "low1", "low2"]

    def test_quota_counts_only_unfinished_jobs(self):
        queue = JobQueue(quota=2)
        first = queue.submit(self.make_job("a"))
        queue.submit(self.make_job("b"))
        with pytest.raises(QuotaExceeded, match="quota is 2"):
            queue.submit(self.make_job("c"))
        first.state = "done"
        queue.submit(self.make_job("c"))  # freed slot admits again
        # other clients are unaffected by a full tenant
        queue.submit(self.make_job("d", client="other"))

    def test_cancel_queued_job_never_runs(self):
        queue = JobQueue(quota=10)
        queue.submit(self.make_job("a"))
        queue.submit(self.make_job("b"))
        assert queue.cancel("a").state == "cancelled"
        assert queue.next_ready(timeout=0.1).job_id == "b"
        assert queue.next_ready(timeout=0.05) is None

    def test_cancel_running_job_sets_flag(self):
        queue = JobQueue(quota=10)
        queue.submit(self.make_job("a"))
        job = queue.next_ready(timeout=0.1)
        assert queue.cancel("a") is job
        assert job.state == "running" and job.cancel_requested

    def test_stop_drains_then_returns_none(self):
        queue = JobQueue(quota=10)
        queue.submit(self.make_job("a"))
        queue.stop()
        assert queue.next_ready().job_id == "a"
        assert queue.next_ready() is None

    def test_unknown_cancel_returns_none(self):
        assert JobQueue().cancel("nope") is None


# ----------------------------------------------------------------------
# Backend validation (satellite: unrecognized REPRO_BENCH_BACKEND)
# ----------------------------------------------------------------------
class TestBackendValidation:
    def test_validate_normalizes_case_and_whitespace(self):
        assert validate_backend(" Pool\n") == "pool"
        assert validate_backend("FORKSERVER") == "forkserver"

    def test_unknown_value_names_source_and_valid_backends(self):
        with pytest.raises(ValueError) as excinfo:
            validate_backend("warpdrive", source="REPRO_BENCH_BACKEND")
        message = str(excinfo.value)
        assert "REPRO_BENCH_BACKEND" in message
        assert "warpdrive" in message
        for name in ("auto", "forkserver", "pool", "serial"):
            assert name in message

    def test_run_cells_rejects_bad_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "warpdrive")
        with pytest.raises(ValueError,
                           match="REPRO_BENCH_BACKEND.*warpdrive"):
            run_cells([echo_cell("a", 1)], backend="auto")

    def test_daemon_startup_rejects_bad_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "warpdrive")
        with pytest.raises(ValueError, match="REPRO_BENCH_BACKEND"):
            ReproDaemon(DaemonConfig())

    def test_simspeed_script_rejects_bad_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "warpdrive")
        sys.path.insert(0, "scripts")
        try:
            import check_simspeed
        finally:
            sys.path.pop(0)
        with pytest.raises(ValueError, match="REPRO_BENCH_BACKEND"):
            check_simspeed.main(["--iters-scale", "0.01"])

    def test_daemon_backend_resolution(self, no_backend_env, monkeypatch):
        expected = "forkserver" if forkserver.fork_available() else "serial"
        assert resolve_daemon_backend("auto") == expected
        assert resolve_daemon_backend("pool") == "serial"
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "serial")
        assert resolve_daemon_backend("auto") == "serial"


# ----------------------------------------------------------------------
# Daemon round trip
# ----------------------------------------------------------------------
class TestDaemonRoundTrip:
    def test_results_byte_identical_to_serial_run_cells(self, service):
        _, connect = service
        cells = [echo_cell(f"env{i % 2}", i * 3) for i in range(5)]
        payloads = connect().run_cells(cells, label="roundtrip")
        serial = run_cells(cells, backend="serial", cache=None,
                           integrity="ignore")
        # No sort_keys: payload dict order is semantic (table rows render
        # in counts order) and must survive the wire round trip exactly.
        assert json.dumps(payloads) == json.dumps(serial)

    def test_streamed_cells_arrive_in_progress_order(self, service):
        _, connect = service
        events = []
        connect().run_cells(
            [echo_cell(f"e{i}", i) for i in range(4)],
            on_cell=events.append,
        )
        assert [e["completed"] for e in events] == [1, 2, 3, 4]
        assert all(e["cells"] == 4 for e in events)

    def test_cached_cells_are_served_without_dispatch(self, service):
        _, connect = service
        cells = [echo_cell("memo", 42, cacheable=True)]
        client = connect()
        first = client.run_cells(cells)
        reply = client.submit(cells, stream=False)
        result = client.result(reply["job"], wait=True)
        assert result["state"] == "done"
        assert result["payloads"] == first
        assert result["cached"] == 1
        assert result["pool"]["cold_boots"] == 0

    def test_status_and_result_for_unknown_job(self, service):
        _, connect = service
        client = connect()
        with pytest.raises(ServiceError, match="unknown-job"):
            client.status("j9999")
        with pytest.raises(ServiceError, match="unknown-job"):
            client.result("j9999")

    def test_unknown_cell_kind_rejected_at_submit(self, service):
        _, connect = service
        bogus = Cell(kind="warpdrive", environment="a", workload="w",
                     cacheable=False)
        with pytest.raises(ServiceError, match="bad-cell"):
            connect().submit([bogus])

    def test_quota_rejection_over_the_socket(self, service):
        daemon, connect = service
        client = connect(client="greedy")
        for _ in range(daemon.config.quota):
            client.submit([sleep_cell("z", 0.4)], stream=False)
        with pytest.raises(ServiceError, match="quota"):
            client.submit([echo_cell("a", 1)])
        assert daemon.stats.counters["quota_rejections"] == 1

    def test_cancel_queued_job(self, service):
        _, connect = service
        client = connect()
        # a sleeper occupies the dispatcher so the next job stays queued
        client.submit([sleep_cell("s", 0.8)], stream=False)
        reply = client.submit([echo_cell("a", 1)], stream=False)
        cancel = client.cancel(reply["job"])
        assert cancel["state"] in ("cancelled", "running")
        final = client.result(reply["job"], wait=True)
        assert final["state"] == "cancelled"

    def test_draining_daemon_rejects_new_submissions(self, tmp_path,
                                                     no_backend_env):
        daemon = ReproDaemon(DaemonConfig(
            socket_path=str(tmp_path / "x.sock"), no_cache=True))
        daemon._draining = True

        class StubConn:
            id = 1
            client = "stub"

        reply = daemon._op_submit(
            StubConn(), {"cells": [cell_to_wire(echo_cell("a", 1))]})
        assert reply == {"ok": False, "code": "draining",
                         "error": "daemon is draining and accepts "
                                  "no new jobs"}
        assert daemon.stats.counters["rejected_draining"] == 1

    def test_tail_metrics_streams_and_ends(self, service):
        _, connect = service
        snapshots = list(connect().tail_metrics(interval=0.05, count=2))
        assert len(snapshots) == 2
        for snapshot in snapshots:
            assert "queue_depth" in snapshot["gauges"]
            assert "cold_boots" in snapshot["counters"]

    def test_integrity_enforced_on_every_streamed_payload(
        self, service, monkeypatch
    ):
        daemon, connect = service

        def failing_verify(labels, payloads, waive=()):
            raise IntegrityError(f"injected loss in {labels[0]}")

        monkeypatch.setattr(daemon_mod, "verify_payload_integrity",
                            failing_verify)
        client = connect()
        with pytest.raises(ServiceError, match="injected loss"):
            client.run_cells([echo_cell("lossy", 1)])
        assert daemon.stats.counters["integrity_failures"] == 1
        # waiving is the client's explicit choice, not the default
        reply = client.submit([echo_cell("waived", 2)], integrity="ignore",
                              stream=False)
        final = client.result(reply["job"], wait=True)
        assert final["state"] == "done"


# ----------------------------------------------------------------------
# Warm pool shared across clients
# ----------------------------------------------------------------------
@pytest.mark.skipif(not forkserver.fork_available(),
                    reason="warm pools need os.fork")
class TestWarmPoolSharing:
    def test_second_client_sees_zero_cold_boots(self, service):
        _, connect = service
        first = connect(client="tenant-a")
        reply_a = first.submit([echo_cell("shared", i) for i in range(3)],
                               stream=False)
        result_a = first.result(reply_a["job"], wait=True)
        assert result_a["state"] == "done"
        assert result_a["pool"]["cold_boots"] >= 1  # paid the boot

        # Different client, different values (cache misses: the cells
        # are uncacheable anyway), same environment key -> warm pool.
        second = connect(client="tenant-b")
        reply_b = second.submit([echo_cell("shared", 100 + i)
                                 for i in range(3)], stream=False)
        result_b = second.result(reply_b["job"], wait=True)
        assert result_b["state"] == "done"
        assert result_b["cached"] == 0
        assert result_b["pool"]["cold_boots"] == 0
        assert result_b["pool"]["warm_dispatches"] == 3

    def test_pool_survives_a_failing_job(self, service):
        _, connect = service
        client = connect()
        bad = Cell(kind="selftest", environment="shared", workload="fault",
                   spec={"mode": "fail"}, cacheable=False)
        reply = client.submit([bad], stream=False)
        assert client.result(reply["job"], wait=True)["state"] == "failed"
        # the daemon keeps serving on the same warm pool
        payloads = client.run_cells([echo_cell("shared", 7)])
        assert payloads[0]["value"] == 7


# ----------------------------------------------------------------------
# Client disconnect mid-job (satellite: orphan cleanup, no leaks)
# ----------------------------------------------------------------------
class TestClientDisconnect:
    def test_disconnect_cancels_streamed_job_without_leaking(self, service):
        daemon, connect = service
        client = connect()
        # Warm the pool first: its long-lived server process is a
        # legitimate child, not a leak — snapshot /proc after it exists.
        client.run_cells([echo_cell("warmup", 0)])
        before = live_children()
        reply = client.submit([sleep_cell(f"s{i}", 0.3) for i in range(6)],
                              stream=True)
        job_id = reply["job"]
        client.close()  # walk away mid-job
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            job = daemon.queue.get(job_id)
            if job.finished:
                break
            time.sleep(0.05)
        assert daemon.queue.get(job_id).state == "cancelled"
        assert daemon.stats.counters["orphaned_jobs_cancelled"] == 1
        # other tenants are untouched and the pool still answers
        survivor = connect()
        assert survivor.run_cells([echo_cell("a", 5)])[0]["value"] == 5
        if before is not None:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                leaked = live_children() - before
                if not leaked:
                    break
                time.sleep(0.1)
            assert not leaked, f"leaked children: {leaked}"

    def test_disconnect_does_not_cancel_detached_jobs(self, service):
        daemon, connect = service
        client = connect()
        reply = client.submit([sleep_cell("d", 0.3)], stream=False)
        client.close()
        job_id = reply["job"]
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            if daemon.queue.get(job_id).finished:
                break
            time.sleep(0.05)
        # a detached job's result stays fetchable by a later connection
        assert daemon.queue.get(job_id).state == "done"
        final = connect().result(job_id, wait=True)
        assert final["payloads"][0]["value"] == "slept"


# ----------------------------------------------------------------------
# cache prune racing an active daemon (satellite)
# ----------------------------------------------------------------------
class TestPruneRace:
    def test_prune_during_dispatch_never_corrupts_results(self, service,
                                                          tmp_path):
        daemon, connect = service
        cache_dir = daemon.config.cache_dir
        stop = threading.Event()
        errors = []

        def pruner():
            from repro.tools.runner import prune_cache
            while not stop.is_set():
                try:
                    prune_cache(cache_dir, max_age_days=0.0)
                except Exception as exc:  # noqa: BLE001 - the assertion
                    errors.append(exc)
                time.sleep(0.01)

        thread = threading.Thread(target=pruner, daemon=True)
        thread.start()
        try:
            client = connect()
            for round_no in range(4):
                cells = [echo_cell("memo", (round_no, i), cacheable=True)
                         for i in range(3)]
                payloads = client.run_cells(cells)
                assert [tuple(p["value"]) for p in payloads] == [
                    (round_no, i) for i in range(3)
                ]
        finally:
            stop.set()
            thread.join(timeout=10)
        assert errors == []

    def test_cli_prune_subprocess_during_dispatch(self, service):
        daemon, connect = service
        client = connect()
        # seed the cache, then prune via the CLI while submitting more
        client.run_cells([echo_cell("memo", "seed", cacheable=True)])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "cache", "prune",
             "--dir", daemon.config.cache_dir, "--max-age", "0"],
            env=dict(os.environ, PYTHONPATH="src"),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        payloads = client.run_cells(
            [echo_cell("memo", f"live{i}", cacheable=True)
             for i in range(3)])
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        assert [p["value"] for p in payloads] == ["live0", "live1", "live2"]


# ----------------------------------------------------------------------
# SIGTERM drain (subprocess, the real signal path)
# ----------------------------------------------------------------------
class TestSigtermDrain:
    def test_sigterm_finishes_admitted_jobs_and_exits_clean(self, tmp_path):
        sock = str(tmp_path / "drain.sock")
        env = dict(os.environ, PYTHONPATH="src",
                   REPRO_CACHE_DIR=str(tmp_path / "cache"))
        env.pop("REPRO_BENCH_BACKEND", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket", sock],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 20
            while not os.path.exists(sock):
                assert time.monotonic() < deadline, "daemon never bound"
                assert proc.poll() is None, proc.communicate()[0]
                time.sleep(0.05)
            client = ReproServiceClient(socket_path=sock, timeout=60)
            with client:
                reply = client.submit([sleep_cell("s", 0.5)], stream=False)
                proc.send_signal(signal.SIGTERM)
                # admitted before the signal: must still complete
                final = client.result(reply["job"], wait=True)
            assert final["state"] == "done"
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "drained and stopped" in out
        assert not os.path.exists(sock)

    def test_sigterm_leaves_no_children_in_process_drain(self, service):
        # In-process twin of the subprocess test: the daemon's pool
        # children are OUR children here, so /proc accounting can prove
        # the drain reaped every one of them (fixture teardown drains).
        daemon, connect = service
        before = live_children()
        connect().run_cells([echo_cell("e", 1)])
        daemon.request_shutdown()
        deadline = time.monotonic() + 20
        while daemon._dispatcher.is_alive():
            assert time.monotonic() < deadline, "dispatcher never exited"
            time.sleep(0.05)
        if before is not None:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                leaked = live_children() - before
                if not leaked:
                    break
                time.sleep(0.1)
            assert not leaked, f"leaked children: {leaked}"


# ----------------------------------------------------------------------
# Stale socket handling
# ----------------------------------------------------------------------
class TestSocketLifecycle:
    def test_stale_socket_is_replaced(self, tmp_path, no_backend_env):
        path = str(tmp_path / "stale.sock")
        dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        dead.bind(path)
        dead.close()  # path remains, nobody listens: a crashed daemon
        daemon = ReproDaemon(DaemonConfig(socket_path=path, no_cache=True))
        ready = threading.Event()
        thread = threading.Thread(target=daemon.serve, args=(ready,),
                                  daemon=True)
        thread.start()
        assert ready.wait(10)
        with ReproServiceClient(socket_path=path, timeout=30) as client:
            assert client.status()["jobs"] == []
        daemon.request_shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_second_daemon_on_live_socket_refuses(self, service):
        daemon, _ = service
        twin = ReproDaemon(DaemonConfig(
            socket_path=daemon.config.resolved_socket_path(),
            no_cache=True))
        with pytest.raises(ServiceError, match="already listening"):
            twin.serve()

    def test_client_error_when_no_daemon(self, tmp_path):
        client = ReproServiceClient(
            socket_path=str(tmp_path / "nobody.sock"))
        with pytest.raises(ServiceError, match="cannot reach"):
            client.connect()
