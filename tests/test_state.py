"""Checkpoint/restore subsystem tests (``repro.state``).

Three layers of guarantees:

* **section round-trips** — every component's ``state_dict`` survives
  the snapshot file format (JSON + zlib + checksums) and ``load_state``
  reproduces it exactly on a rebuilt skeleton;
* **bit-identical replay** — restore-then-run produces the same cycles,
  statistics, ring-buffer contents and alerts as cold-boot-then-run
  (the contract the warm-start experiment cells depend on);
* **format integrity** — corrupt or mismatched snapshot files fail
  loudly with :class:`~repro.errors.SnapshotError`.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.hypernel import build_kvm_guest, build_native, build_system
from repro.errors import ConfigurationError, SnapshotError
from repro.hw.memory import PhysicalMemory
from repro.kernel.objects import CRED
from repro.security import CredIntegrityMonitor, DentryIntegrityMonitor
from repro.state import (
    MAGIC,
    capture_snapshot,
    diff_snapshots,
    load_snapshot,
    restore_from_snapshot,
    restore_system,
    save_snapshot,
    snapshot_info,
)
from repro.utils.stats import merge
from tests.conftest import small_platform_config


def _normalize(value):
    """JSON round-trip: tuples become lists, exactly as the file format
    stores them, so fresh state dicts compare equal to loaded sections."""
    return json.loads(json.dumps(value))


def _build_monitored():
    return build_system(
        "hypernel",
        platform_config=small_platform_config(),
        monitors=[CredIntegrityMonitor(), DentryIntegrityMonitor()],
    )


@pytest.fixture(scope="module")
def roundtrip(tmp_path_factory):
    """One monitored system, snapshotted and restored, shared per module."""
    path = tmp_path_factory.mktemp("snaps") / "monitored.snap"
    original = _build_monitored()
    original.spawn_init()
    snapshot = save_snapshot(original, path)
    restored = restore_system(path)
    return original, snapshot, restored, path


_ACCESSORS = {
    "memory": lambda s: s.platform.memory,
    "clock": lambda s: s.platform.clock,
    "caches": lambda s: s.platform.caches,
    "dram": lambda s: s.platform.dram,
    "bus": lambda s: s.platform.bus,
    "gic": lambda s: s.platform.gic,
    "cpu": lambda s: s.cpu,
    "kernel": lambda s: s.kernel,
    "hypersec": lambda s: s.hypersec,
    "mbm": lambda s: s.mbm,
}


class TestSectionRoundTrips:
    @pytest.mark.parametrize("section", sorted(_ACCESSORS))
    def test_section_roundtrips_exactly(self, roundtrip, section):
        original, snapshot, restored, _ = roundtrip
        assert section in snapshot.sections
        fresh = _ACCESSORS[section](restored).state_dict()
        assert _normalize(fresh) == _normalize(snapshot.sections[section])

    def test_monitor_sections_roundtrip(self, roundtrip):
        original, snapshot, restored, _ = roundtrip
        assert [app.name for app in restored.monitors] == [
            app.name for app in original.monitors
        ]
        assert _normalize(
            [app.state_dict() for app in restored.monitors]
        ) == _normalize(snapshot.sections["monitors"])

    def test_kvm_section_roundtrips(self, tmp_path):
        path = tmp_path / "kvm.snap"
        original = build_kvm_guest(
            platform_config=small_platform_config(), prepopulate_stage2=True
        )
        snapshot = save_snapshot(original, path)
        restored = restore_system(path)
        assert _normalize(restored.kvm.state_dict()) == _normalize(
            snapshot.sections["kvm"]
        )
        assert restored.cpu.regs.read("VTTBR_EL2") == original.cpu.regs.read(
            "VTTBR_EL2"
        )

    def test_resnapshot_is_content_identical(self, roundtrip, tmp_path):
        _, snapshot, restored, _ = roundtrip
        again = save_snapshot(restored, tmp_path / "again.snap")
        assert again.content_hash == snapshot.content_hash


class TestPhysicalMemoryProperty:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3 * (1 << 13) - 1),  # word index, 3 chunks
                st.integers(0, (1 << 64) - 1),
            ),
            max_size=120,
        )
    )
    def test_random_write_patterns_survive_roundtrip(self, writes):
        base_a, base_b = 0x8000_0000, 0x9000_0000
        span = 3 * (1 << 16)  # three chunks per range

        def fresh():
            memory = PhysicalMemory()
            memory.add_range(base_a, span)
            memory.add_range(base_b, span)
            return memory

        original = fresh()
        for index, value in writes:
            base = base_a if index % 2 else base_b
            original.write_word(base + (index * 8) % span, value)
        clone = fresh()
        clone.load_state(_normalize(original.state_dict()))
        assert clone.population() == original.population()
        for base in (base_a, base_b):
            for addr in range(base, base + span, 8):
                assert clone.read_word(addr) == original.read_word(addr)


def _run_scenario(system):
    """The determinism-guard scenario: benign work + one monitored-write
    attack; returns every observable the engine produces."""
    kernel = system.kernel
    init = system.spawn_init()
    kernel.vfs.mkdir_p("/home/user")
    kernel.sys.creat(init, "/home/user/notes.txt")
    handle = kernel.sys.open(init, "/home/user/notes.txt")
    kernel.sys.write(init, handle, 4096)
    kernel.sys.close(init, handle)
    child = kernel.sys.fork(init)
    kernel.procs.context_switch(child)
    kernel.sys.exit(child)
    kernel.procs.context_switch(init)
    kernel.sys.wait(init)
    kernel.sys.setuid(init, 1000)
    euid_kva = kernel.linear_map.kva(
        init.cred_pa + CRED.field("euid").byte_offset
    )
    kernel.cpu.write(euid_kva, 0)

    monitor = system.monitor_by_name("cred_monitor")
    ring_words = [
        system.platform.bus.peek(system.mbm.ring.base + offset * 8)
        for offset in range(2 + 2 * min(system.mbm.ring.entries, 32))
    ]
    platform = system.platform
    stats = merge(
        system.cpu.stats,
        system.cpu.mmu.stats,
        system.cpu.mmu.tlb.stats,
        system.cpu.mmu.stage2_tlb.stats,
        platform.bus.stats,
        platform.dram.stats,
        platform.l1.stats,
        platform.l2.stats,
        platform.caches.stats,
        system.mbm.stats,
        system.mbm.snooper.stats,
        system.mbm.translator.stats,
        system.mbm.decision.stats,
        system.mbm.ring.stats,
    )
    return {
        "cycles": platform.clock.now,
        "stats": stats,
        "summary": system.stats_summary(),
        "ring_words": ring_words,
        "alerts": [
            (alert.reason, alert.addr, alert.observed, alert.expected)
            for alert in monitor.alerts
        ],
        "events": monitor.event_count,
        "population": platform.memory.population(),
    }


class TestBitIdenticalReplay:
    def test_restore_then_run_equals_cold_boot_then_run(self, tmp_path):
        """The tentpole contract: a machine restored from a post-boot
        snapshot replays a monitored attack scenario bit-identically."""
        path = tmp_path / "boot.snap"
        cold = _build_monitored()
        save_snapshot(cold, path)
        warm = restore_system(path)
        first = _run_scenario(cold)
        second = _run_scenario(warm)
        assert first == second
        assert first["events"] > 0 and first["alerts"]

    def test_post_run_snapshots_diff_clean(self, tmp_path):
        path = tmp_path / "boot.snap"
        cold = _build_monitored()
        save_snapshot(cold, path)
        warm = restore_system(path)
        _run_scenario(cold)
        _run_scenario(warm)
        path_a, path_b = tmp_path / "a.snap", tmp_path / "b.snap"
        save_snapshot(cold, path_a)
        save_snapshot(warm, path_b)
        assert "identical" in diff_snapshots(path_a, path_b)

    def test_lmbench_replay_all_systems(self, tmp_path):
        from repro.workloads.lmbench import LmbenchSuite

        for name, kwargs in [
            ("native", {}),
            ("kvm-guest", {"prepopulate_stage2": True}),
            ("hypernel", {"with_mbm": False}),
        ]:
            path = tmp_path / f"{name}.snap"
            cold = build_system(
                name, platform_config=small_platform_config(), **kwargs
            )
            save_snapshot(cold, path)
            warm = restore_system(path)
            for system in (cold, warm):
                suite = LmbenchSuite(system, warmup=1, iterations=2)
                suite.setup()
                suite.run_op("fork+execv")
                suite.run_op("mmap")
            assert warm.platform.clock.now == cold.platform.clock.now, name


class TestInMemoryRestore:
    """``restore_from_snapshot``: decode once, materialize many.

    The fork-server backend leans on this — a server process decodes
    the boot image a single time and forks any number of children, so
    restores from one :class:`Snapshot` must be mutually independent
    and bit-identical to a from-disk restore.
    """

    def test_one_decode_materializes_independent_systems(self, tmp_path):
        path = tmp_path / "boot.snap"
        save_snapshot(_build_monitored(), path)
        snapshot = load_snapshot(path)
        first = restore_from_snapshot(snapshot)
        second = restore_from_snapshot(snapshot)
        run_first = _run_scenario(first)
        # `first` has now mutated its machine; a third restore from the
        # same decoded snapshot must still start pristine.
        third = restore_from_snapshot(snapshot)
        assert _run_scenario(second) == run_first
        assert _run_scenario(third) == run_first
        assert run_first["events"] > 0

    def test_restore_does_not_consume_or_mutate_the_snapshot(self, tmp_path):
        path = tmp_path / "boot.snap"
        original = save_snapshot(_build_monitored(), path)
        snapshot = load_snapshot(path)
        _run_scenario(restore_from_snapshot(snapshot))
        again = save_snapshot(
            restore_from_snapshot(snapshot), tmp_path / "again.snap"
        )
        assert again.content_hash == original.content_hash

    def test_in_memory_restore_matches_from_disk_restore(self, tmp_path):
        path = tmp_path / "boot.snap"
        save_snapshot(_build_monitored(), path)
        via_disk = _run_scenario(restore_system(path))
        via_memory = _run_scenario(restore_from_snapshot(load_snapshot(path)))
        assert via_memory == via_disk


class TestWarmStartCells:
    def test_table1_warm_start_is_byte_identical(self, tmp_path, monkeypatch):
        from repro.analysis.tables import run_table1

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        factory = small_platform_config
        cold = run_table1(platform_factory=factory, warmup=1, iterations=2,
                          ops=["fork+execv", "mmap"])
        warm = run_table1(platform_factory=factory, warmup=1, iterations=2,
                          ops=["fork+execv", "mmap"], warm_start=True)
        assert warm.format() == cold.format()
        snapshots = list((tmp_path / "snapshots").glob("*.snap"))
        assert len(snapshots) == 3  # one shared boot image per system

    def test_boot_snapshots_are_reused(self, tmp_path):
        from repro.analysis.tables import table1_cells
        from repro.tools.runner import attach_boot_snapshots

        factory = small_platform_config
        first = attach_boot_snapshots(
            table1_cells(platform_factory=factory), cache_dir=tmp_path
        )
        stamps = {
            cell.snapshot_path: json.dumps(cell.spec, sort_keys=True)
            for cell in first
        }
        second = attach_boot_snapshots(
            table1_cells(platform_factory=factory), cache_dir=tmp_path
        )
        for cell in second:
            assert cell.snapshot_path in stamps
            assert json.dumps(cell.spec, sort_keys=True) == stamps[
                cell.snapshot_path
            ]

    def test_snapshot_hash_reaches_cache_key(self, tmp_path):
        from repro.analysis.tables import table1_cells
        from repro.tools.runner import attach_boot_snapshots, cache_key

        factory = small_platform_config
        cold_keys = [cache_key(c)
                     for c in table1_cells(platform_factory=factory)]
        warm = attach_boot_snapshots(
            table1_cells(platform_factory=factory), cache_dir=tmp_path
        )
        warm_keys = [cache_key(c) for c in warm]
        assert set(cold_keys).isdisjoint(warm_keys)
        for cell in warm:
            assert cell.spec["boot_snapshot"]


class TestFormatIntegrity:
    def test_info_names_every_section(self, roundtrip):
        _, snapshot, _, path = roundtrip
        text = snapshot_info(path)
        for entry in snapshot.manifest["sections"]:
            assert entry["name"] in text
        assert snapshot.content_hash in text
        assert "CredIntegrityMonitor" in text

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.snap"
        path.write_bytes(b"NOTASNAPSHOT" + b"\0" * 64)
        with pytest.raises(SnapshotError, match="magic"):
            load_snapshot(path)

    def test_corrupt_section_rejected(self, roundtrip, tmp_path):
        _, _, _, path = roundtrip
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF  # flip a byte inside the last section
        broken = tmp_path / "broken.snap"
        broken.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError):
            load_snapshot(broken)

    def test_expect_hash_mismatch_rejected(self, roundtrip):
        _, _, _, path = roundtrip
        with pytest.raises(SnapshotError, match="content hash"):
            restore_system(path, expect_hash="0" * 64)

    def test_build_system_name_mismatch_rejected(self, roundtrip):
        _, _, _, path = roundtrip
        with pytest.raises(KeyError, match="hypernel"):
            build_system("native", from_snapshot=path)

    def test_build_system_rejects_extra_kwargs(self, roundtrip):
        _, _, _, path = roundtrip
        with pytest.raises(TypeError, match="from_snapshot"):
            build_system("hypernel", from_snapshot=path, with_mbm=False)

    def test_build_system_restores_by_name(self, roundtrip):
        _, snapshot, _, path = roundtrip
        system = build_system("hypernel", from_snapshot=path)
        assert system.name == "hypernel"
        assert system.recipe == snapshot.manifest["recipe"]

    def test_unbooted_skeleton_cannot_snapshot(self, tmp_path):
        skeleton = build_native(
            platform_config=small_platform_config(), _skeleton=True
        )
        with pytest.raises(ConfigurationError, match="unbooted"):
            capture_snapshot(skeleton)

    def test_diff_reports_changed_sections(self, roundtrip, tmp_path):
        original, _, _, path = roundtrip
        changed = restore_system(path)
        changed.cpu.compute(100)  # advance the clock only
        other = tmp_path / "other.snap"
        save_snapshot(changed, other)
        text = diff_snapshots(path, other)
        assert "clock" in text

    def test_magic_prefix_on_disk(self, roundtrip):
        _, _, _, path = roundtrip
        assert path.read_bytes()[: len(MAGIC)] == MAGIC
