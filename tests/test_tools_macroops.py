"""Macro-op memoization engine (repro.tools.macroops).

The contract (ISSUE 7): a memoized loop must leave the machine — every
counter, the clock, memory, caches, monitor state — *bit-identical* to
the plain ``for _ in range(n): op()`` loop, while replaying most
iterations as aggregate effect applications.  Anything the engine
cannot prove periodic must fall back to raw execution, never to a
wrong answer.
"""

import pytest

from repro.config import PlatformConfig
from repro.obs.metrics import collect_metrics
from repro.obs.profiler import attribute_cycles
from repro.tools import perf
from repro.tools.macroops import (
    _STRIP_KEYS,
    MacroOpEngine,
    _strip,
    memoization_enabled,
)


def small_config():
    return PlatformConfig(
        dram_bytes=64 * 1024 * 1024, secure_bytes=8 * 1024 * 1024,
        mbm_ring_entries=16,
    )


def build_storm():
    """A full-Hypernel monitored-write-storm system and its op."""
    builder, _ = perf.WORKLOADS["monitored_write_storm"]
    return builder(small_config())


def build_fork():
    builder, _ = perf.WORKLOADS["fork_execv"]
    return builder(small_config())


def machine_image(system):
    """Everything the bit-identical contract covers, in one value."""
    return (
        perf.count_accesses(system),
        system.platform.clock.now,
        dict(system.platform.clock.attribution),
        collect_metrics(system).to_dict(),
    )


def run_pair(build, count, **engine_kwargs):
    """Run ``count`` ops memoized and raw on twin systems."""
    sys_memo, op_memo = build()
    engine = MacroOpEngine(sys_memo, enabled=True, **engine_kwargs)
    report = engine.run_repeated("op", op_memo, count)

    sys_raw, op_raw = build()
    for _ in range(count):
        op_raw()
    return sys_memo, sys_raw, engine, report


class TestBitIdenticalReplay:
    def test_storm_memoized_equals_raw(self):
        sys_memo, sys_raw, engine, report = run_pair(build_storm, 600)
        assert report.replayed_ops > 0, "storm must memoize (vacuity)"
        assert report.replayed_ops + report.recorded_ops + report.raw_ops \
            == 600
        img_memo = machine_image(sys_memo)
        img_raw = machine_image(sys_raw)
        # The memoizer's own counters live on sys_memo only (the
        # "macroops" component and the advisory macroop_replay
        # attribution bucket); drop both before comparing.
        for img in (img_memo, img_raw):
            img[3]["components"].pop("macroops", None)
            img[3]["attribution"].pop("macroop_replay", None)
        assert img_memo == img_raw

    def test_fork_execv_memoized_equals_raw(self):
        sys_memo, sys_raw, engine, report = run_pair(build_fork, 40)
        assert report.replayed_ops > 0
        assert perf.count_accesses(sys_memo) == perf.count_accesses(sys_raw)
        assert sys_memo.platform.clock.now == sys_raw.platform.clock.now

    def test_integrity_counters_and_profiler_site(self):
        sys_memo, _, engine, report = run_pair(build_storm, 600)
        stats = sys_memo.macroop_stats
        assert stats.get("integrity_checks") >= 1
        assert stats.get("replay_divergence") == 0
        assert stats.get("hits") >= 1
        assert stats.get("replayed_sim_cycles") > 0
        flat = attribute_cycles(sys_memo).as_flat_dict()
        assert flat["macroop_replay"] == stats.get("replayed_sim_cycles")


class TestBailConditions:
    """Unprovable loops run raw — and still produce the right answer."""

    def test_op_returning_value_bails(self):
        system, op = build_storm()
        engine = MacroOpEngine(system, enabled=True)

        def chatty():
            op()
            return 42

        report = engine.run_repeated("chatty", chatty, 40)
        assert report.bail_reason == "return_value"
        assert report.replayed_ops == 0
        assert report.raw_ops + report.recorded_ops == 40

    def test_clock_reading_op_bails(self):
        system, op = build_storm()
        engine = MacroOpEngine(system, enabled=True)
        clock = system.platform.clock

        def timed():
            _ = clock.now
            op()

        report = engine.run_repeated("timed", timed, 40)
        assert report.bail_reason == "clock_read"
        assert report.replayed_ops == 0

    def test_aperiodic_op_runs_raw(self):
        system, op = build_storm()
        engine = MacroOpEngine(system, enabled=True, max_samples=16)
        kern = system.kernel
        pages = [kern.alloc_page("test-scratch") for _ in range(3)]
        state = {"i": 0}

        def aperiodic():
            # A fresh word every call: the shadow never repeats.
            kern.cpu.write(
                kern.linear_map.kva(pages[0]) + 8 * (state["i"] % 64),
                state["i"],
            )
            state["i"] += 1

        report = engine.run_repeated("aperiodic", aperiodic, 40)
        assert report.replayed_ops == 0
        assert report.bail_reason in ("no_cycle", "budget")
        # Structural bails are remembered: the next call skips sampling.
        report2 = engine.run_repeated("aperiodic", aperiodic, 40)
        if report.bail_reason == "no_cycle":
            assert report2.raw_ops == 40

    def test_short_loops_skip_memoization(self):
        system, op = build_storm()
        engine = MacroOpEngine(system, enabled=True, min_iterations=8)
        report = engine.run_repeated("op", op, 4)
        assert report.bail_reason == "short"
        assert report.raw_ops == 4

    def test_disabled_engine_runs_raw(self):
        system, op = build_storm()
        engine = MacroOpEngine(system, enabled=False)
        report = engine.run_repeated("op", op, 40)
        assert report.bail_reason == "disabled"
        assert report.raw_ops == 40
        assert system.macroop_stats.get("hits") == 0


class TestEnvironmentSwitch:
    def test_repro_macroops_0_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_MACROOPS", "0")
        assert not memoization_enabled()
        system, op = build_storm()
        engine = MacroOpEngine(system)  # enabled=None → env default
        assert not engine.enabled

    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_MACROOPS", raising=False)
        assert memoization_enabled()

    def test_workload_invariants_match_with_and_without(self):
        on = perf.run_workload(
            "monitored_write_storm", iterations=200,
            platform_config=small_config(), memoize=True,
        )
        off = perf.run_workload(
            "monitored_write_storm", iterations=200,
            platform_config=small_config(), memoize=False,
        )
        assert on.accesses == off.accesses
        assert on.sim_cycles == off.sim_cycles
        assert on.extras["memoized"] and not off.extras["memoized"]


class TestContentAddressedInvalidation:
    """State drift between calls must miss the table, not mis-replay."""

    def test_mutated_memory_invalidates_cross_call_entry(self):
        count = 200
        sys_memo, op_memo = build_storm()
        engine = MacroOpEngine(sys_memo, enabled=True)
        engine.run_repeated("op", op_memo, count)
        engine.run_repeated("op", op_memo, count)  # 2nd call stores entry

        # Perturb machine state between calls: new page, one write.
        kern = sys_memo.kernel
        page = kern.alloc_page("test-scratch")
        kern.cpu.write(kern.linear_map.kva(page), 0xDEAD)
        engine.run_repeated("op", op_memo, count)

        sys_raw, op_raw = build_storm()
        for _ in range(2 * count):
            op_raw()
        kern_raw = sys_raw.kernel
        page_raw = kern_raw.alloc_page("test-scratch")
        kern_raw.cpu.write(kern_raw.linear_map.kva(page_raw), 0xDEAD)
        for _ in range(count):
            op_raw()

        assert perf.count_accesses(sys_memo) == perf.count_accesses(sys_raw)
        assert sys_memo.platform.clock.now == sys_raw.platform.clock.now


class TestFingerprintNormalization:
    """The fast shallow strip must agree with the full deep strip.

    ``_full_state`` only strips observer keys at the top two levels
    (plus the named ``deep`` subtrees); that is sound only while no
    component buries a ``_STRIP_KEYS`` key deeper.  This is the
    regression guard for that layout assumption.
    """

    @pytest.mark.parametrize("builder", [build_storm, build_fork])
    def test_shallow_strip_matches_deep_strip(self, builder):
        system, op = builder()
        for _ in range(12):  # churn: TLB fills, allocator, monitors
            op()
        cases = [(system.kernel.state_dict(), ("slab",)),
                 (system.cpu.mmu.state_dict(), ())]
        for attr in ("hypersec", "kvm"):
            component = getattr(system, attr, None)
            if component is not None:
                cases.append((component.state_dict(), ()))
        for state, deep in cases:
            assert MacroOpEngine._shallow_strip(state, deep) == _strip(state)

    def test_strip_keys_cover_observer_state(self):
        # The normalized-out keys are exactly the monotonic logs whose
        # deltas the engine replays.
        assert {"stats", "busy_cycles", "alerts"} <= _STRIP_KEYS
