"""Unit tests for the simulation-speed measurement module.

These stay fast by running workloads at tiny iteration counts; the
wall-clock-scale measurements live in ``benchmarks/bench_simspeed.py``
behind the ``simspeed`` marker.
"""

import pytest

from repro.config import PlatformConfig
from repro.tools import perf


def small_config():
    return PlatformConfig(
        dram_bytes=64 * 1024 * 1024, secure_bytes=8 * 1024 * 1024
    )


class TestRunWorkload:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown simspeed workload"):
            perf.run_workload("does_not_exist")

    def test_nonpositive_iterations_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            perf.run_workload("fork_execv", iterations=0)

    def test_measurement_fields_populated(self):
        result = perf.run_workload(
            "monitored_write_storm", iterations=5,
            platform_config=small_config(),
        )
        assert result.workload == "monitored_write_storm"
        assert result.iterations == 5
        assert result.accesses > 0
        assert result.sim_cycles > 0
        assert result.wall_seconds >= 0
        assert result.accesses_per_sec > 0

    def test_nonpositive_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            perf.run_simspeed(repeats=0)

    def test_repeats_agree_and_best_is_kept(self):
        [result] = perf.run_simspeed(
            iters_scale=0.001, workloads=["monitored_write_storm"],
            repeats=2, platform_config=small_config(),
        )
        # Tiny run: 3000 * 0.001 = 3 iterations; repeats must agree on
        # the simulated fields or run_simspeed raises.
        assert result.iterations == 3
        assert result.accesses > 0

    def test_simulated_fields_are_deterministic(self):
        runs = [
            perf.run_workload(
                "fork_execv", iterations=2, platform_config=small_config()
            )
            for _ in range(2)
        ]
        assert runs[0].accesses == runs[1].accesses
        assert runs[0].sim_cycles == runs[1].sim_cycles


class TestAggregateWorkloads:
    """Workloads whose builder returns ``(None, op)`` tally themselves."""

    def test_runner_workloads_registered(self):
        assert perf.RUNNER_SERIAL_WORKLOAD in perf.WORKLOADS
        assert perf.RUNNER_PARALLEL_WORKLOAD in perf.WORKLOADS

    def test_aggregate_accounting_sums_op_tallies(self, monkeypatch):
        def build_stub(config):
            return None, lambda: (100, 2000)

        monkeypatch.setitem(perf.WORKLOADS, "stub_aggregate", (build_stub, 1))
        result = perf.run_workload("stub_aggregate", iterations=3)
        assert result.accesses == 300
        assert result.sim_cycles == 6000
        assert result.iterations == 3
        assert result.accesses_per_sec > 0


class TestReporting:
    def _result(self, **overrides):
        fields = dict(
            workload="fork_execv", iterations=10, wall_seconds=0.5,
            accesses=1000, sim_cycles=5000, accesses_per_sec=2000.0,
        )
        fields.update(overrides)
        return perf.WorkloadSpeed(**fields)

    def test_report_roundtrip(self, tmp_path):
        path = str(tmp_path / "report.json")
        perf.write_report([self._result()], path, iters_scale=0.5)
        loaded = perf.load_report(path)
        assert loaded["schema"] == perf.SCHEMA_VERSION
        assert loaded["iters_scale"] == 0.5
        assert loaded["workloads"]["fork_execv"]["accesses"] == 1000

    def test_format_report_lists_every_workload(self):
        text = perf.format_report(
            [self._result(), self._result(workload="mmap_storm")]
        )
        assert "fork_execv" in text
        assert "mmap_storm" in text


class TestBaselineGate:
    def _report(self, acc_per_sec, accesses=1000, cycles=5000, iters=10):
        return {
            "schema": perf.SCHEMA_VERSION,
            "workloads": {
                "fork_execv": {
                    "workload": "fork_execv", "iterations": iters,
                    "wall_seconds": 0.5, "accesses": accesses,
                    "sim_cycles": cycles, "accesses_per_sec": acc_per_sec,
                }
            },
        }

    def test_identical_reports_pass(self):
        report = self._report(2000.0)
        assert perf.compare_to_baseline(report, report) == []

    def test_small_slowdown_within_tolerance_passes(self):
        current = self._report(1700.0)   # -15% vs 2000, tolerance 20%
        assert perf.compare_to_baseline(current, self._report(2000.0)) == []

    def test_large_slowdown_fails(self):
        current = self._report(1500.0)   # -25%
        failures = perf.compare_to_baseline(current, self._report(2000.0))
        assert len(failures) == 1
        assert "throughput" in failures[0]

    def test_determinism_drift_fails_even_when_faster(self):
        current = self._report(9000.0, accesses=1001)
        failures = perf.compare_to_baseline(current, self._report(2000.0))
        assert len(failures) == 1
        assert "deterministic" in failures[0]

    def test_cycle_drift_fails(self):
        current = self._report(2000.0, cycles=5001)
        failures = perf.compare_to_baseline(current, self._report(2000.0))
        assert any("sim_cycles" in f for f in failures)

    def test_different_iteration_counts_skip_exact_check(self):
        current = self._report(2000.0, accesses=123, cycles=456, iters=5)
        assert perf.compare_to_baseline(current, self._report(2000.0)) == []

    def test_workload_missing_from_baseline_ignored(self):
        baseline = {"schema": perf.SCHEMA_VERSION, "workloads": {}}
        assert perf.compare_to_baseline(self._report(2000.0), baseline) == []
