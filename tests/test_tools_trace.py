"""Tests for the bus tracer."""

import pytest

from repro.hw.bus import TxnKind
from repro.tools.trace import BusTracer
from tests.helpers import small_platform

BASE = 0x8000_0000


@pytest.fixture
def platform():
    return small_platform()


class TestCapture:
    def test_records_writes_with_time_and_value(self, platform):
        tracer = BusTracer(platform).start()
        platform.bus.write(BASE, 0x42)
        tracer.stop()
        assert len(tracer) == 1
        record = tracer.records[0]
        assert record.paddr == BASE
        assert record.value == 0x42
        assert record.cycle == platform.clock.now

    def test_context_manager(self, platform):
        with BusTracer(platform) as tracer:
            platform.bus.write(BASE, 1)
        platform.bus.write(BASE, 2)  # after stop: not captured
        assert len(tracer) == 1

    def test_range_filter(self, platform):
        with BusTracer(platform, base=BASE + 0x1000, size=0x1000) as tracer:
            platform.bus.write(BASE, 1)            # below
            platform.bus.write(BASE + 0x1800, 2)   # inside
            platform.bus.write(BASE + 0x2000, 3)   # above
        assert [r.value for r in tracer.records] == [2]

    def test_block_overlap_counts(self, platform):
        with BusTracer(platform, base=BASE + 0x100, size=8) as tracer:
            platform.bus.write_block(BASE, 64)  # covers the watched word
            platform.bus.write_block(BASE + 0x200, 8)  # misses it
        assert len(tracer) == 1
        assert tracer.records[0].kind == "block_write"

    def test_kind_filter(self, platform):
        with BusTracer(platform, kinds=[TxnKind.WRITE]) as tracer:
            platform.bus.read(BASE)
            platform.bus.write(BASE, 1)
        assert [r.kind for r in tracer.records] == ["write"]

    def test_initiator_filter(self, platform):
        with BusTracer(platform, initiators=["dma"]) as tracer:
            platform.bus.write(BASE, 1, initiator="cpu")
            platform.bus.write(BASE + 8, 2, initiator="dma")
        assert [r.initiator for r in tracer.records] == ["dma"]

    def test_capacity_drops_and_reports(self, platform):
        with BusTracer(platform, capacity=2) as tracer:
            for index in range(5):
                platform.bus.write(BASE + index * 8, index)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert "dropped" in tracer.to_text()

    def test_clear(self, platform):
        with BusTracer(platform) as tracer:
            platform.bus.write(BASE, 1)
            tracer.clear()
            platform.bus.write(BASE, 2)
        assert [r.value for r in tracer.records] == [2]

    def test_invalid_capacity(self, platform):
        with pytest.raises(ValueError):
            BusTracer(platform, capacity=0)


class TestReporting:
    def test_to_text_empty(self, platform):
        assert "no transactions" in BusTracer(platform).to_text()

    def test_to_text_last(self, platform):
        with BusTracer(platform) as tracer:
            for index in range(5):
                platform.bus.write(BASE + index * 8, index)
        assert len(tracer.to_text(last=2).splitlines()) == 2

    def test_summary(self, platform):
        with BusTracer(platform) as tracer:
            platform.bus.write(BASE, 1)
            platform.bus.read(BASE)
            platform.bus.write(BASE + 0x1000, 2, initiator="dma")
        summary = tracer.summary()
        assert summary["records"] == 3
        assert summary["by_kind"]["write"] == 2
        assert summary["by_initiator"]["dma"] == 1
        assert len(summary["hot_pages"]) == 2

    def test_writes_to(self, platform):
        with BusTracer(platform) as tracer:
            platform.bus.write(BASE, 1)
            platform.bus.write(BASE, 2)
            platform.bus.write(BASE + 8, 3)
        values = [r.value for r in tracer.writes_to(BASE)]
        assert values == [1, 2]


class TestWithExploitScenario:
    def test_trace_catches_the_exploit_write(self, monitored_system):
        """The tracer shows exactly the hostile store (examples use this)."""
        from repro.kernel.objects import CRED

        system = monitored_system
        init = system.spawn_init()
        kernel = system.kernel
        euid_pa = init.cred_pa + CRED.field("euid").byte_offset
        with BusTracer(system.platform, base=euid_pa, size=8,
                       kinds=[TxnKind.WRITE]) as tracer:
            kernel.cpu.write(kernel.linear_map.kva(euid_pa), 0)
        hostile = tracer.writes_to(euid_pa)
        assert len(hostile) == 1
        assert hostile[0].value == 0
