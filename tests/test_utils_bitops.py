"""Unit tests for repro.utils.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AlignmentError
from repro.utils.bitops import (
    align_down,
    align_up,
    bit,
    bits,
    extract,
    insert,
    is_aligned,
    mask,
    require_aligned,
    sign_extend,
)


class TestBit:
    def test_bit_zero(self):
        assert bit(0) == 1

    def test_bit_63(self):
        assert bit(63) == 1 << 63

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit(-1)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_eight(self):
        assert mask(8) == 0xFF

    def test_sixty_four(self):
        assert mask(64) == (1 << 64) - 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask(-3)


class TestBits:
    def test_single_bit_field(self):
        assert bits(5, 5) == 0b100000

    def test_byte_field(self):
        assert bits(15, 8) == 0xFF00

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            bits(3, 7)


class TestExtractInsert:
    def test_extract_low_byte(self):
        assert extract(0xABCD, 7, 0) == 0xCD

    def test_extract_high_nibble(self):
        assert extract(0xABCD, 15, 12) == 0xA

    def test_insert_replaces_field(self):
        assert insert(0xFFFF, 7, 4, 0x0) == 0xFF0F

    def test_insert_rejects_oversized_field(self):
        with pytest.raises(ValueError):
            insert(0, 3, 0, 0x10)

    @given(st.integers(0, mask(32)), st.integers(0, 31), st.integers(0, 31))
    def test_roundtrip(self, value, a, b):
        hi, lo = max(a, b), min(a, b)
        field = extract(value, hi, lo)
        assert insert(value, hi, lo, field) == value


class TestSignExtend:
    def test_positive_unchanged(self):
        assert sign_extend(0x7F, 8) == 0x7F

    def test_negative_extends(self):
        assert sign_extend(0xFF, 8) == -1

    def test_msb_only(self):
        assert sign_extend(0x80, 8) == -128


class TestAlignment:
    def test_is_aligned(self):
        assert is_aligned(0x2000, 0x1000)
        assert not is_aligned(0x2008, 0x1000)

    def test_align_down(self):
        assert align_down(0x2FFF, 0x1000) == 0x2000

    def test_align_up(self):
        assert align_up(0x2001, 0x1000) == 0x3000

    def test_align_up_already_aligned(self):
        assert align_up(0x2000, 0x1000) == 0x2000

    def test_require_aligned_raises(self):
        with pytest.raises(AlignmentError):
            require_aligned(3, 8)

    @given(st.integers(0, 1 << 48), st.sampled_from([8, 64, 4096]))
    def test_align_down_le_value_lt_align_up(self, value, alignment):
        down = align_down(value, alignment)
        up = align_up(value, alignment)
        assert down <= value <= up
        assert is_aligned(down, alignment)
        assert is_aligned(up, alignment)
        assert up - down in (0, alignment)
