"""Unit tests for repro.utils.stats and repro.utils.events."""

import pytest

from repro.utils.events import EventHook
from repro.utils.stats import StatSet, merge


class TestStatSet:
    def test_unset_counter_reads_zero(self):
        stats = StatSet("s")
        assert stats.get("nothing") == 0

    def test_add_default_increment(self):
        stats = StatSet("s")
        stats.add("hits")
        stats.add("hits")
        assert stats.get("hits") == 2

    def test_add_amount(self):
        stats = StatSet("s")
        stats.add("bytes", 512)
        assert stats.get("bytes") == 512

    def test_reset(self):
        stats = StatSet("s")
        stats.add("x", 5)
        stats.reset()
        assert stats.get("x") == 0

    def test_snapshot_is_a_copy(self):
        stats = StatSet("s")
        stats.add("x")
        snap = stats.snapshot()
        stats.add("x")
        assert snap["x"] == 1

    def test_ratio(self):
        stats = StatSet("s")
        stats.add("hits", 3)
        stats.add("total", 4)
        assert stats.ratio("hits", "total") == pytest.approx(0.75)

    def test_ratio_zero_denominator(self):
        stats = StatSet("s")
        assert stats.ratio("hits", "total") == 0.0

    def test_iteration_sorted(self):
        stats = StatSet("s")
        stats.add("b")
        stats.add("a")
        assert [k for k, _ in stats] == ["a", "b"]

    def test_merge_prefixes_names(self):
        one, two = StatSet("one"), StatSet("two")
        one.add("x")
        two.add("x", 2)
        merged = merge(one, two)
        assert merged == {"one.x": 1, "two.x": 2}


class TestEventHook:
    def test_fire_reaches_subscribers_in_order(self):
        hook = EventHook("h")
        seen = []
        hook.subscribe(lambda v: seen.append(("a", v)))
        hook.subscribe(lambda v: seen.append(("b", v)))
        hook.fire(7)
        assert seen == [("a", 7), ("b", 7)]

    def test_unsubscribe(self):
        hook = EventHook("h")
        seen = []
        callback = hook.subscribe(seen.append)
        hook.unsubscribe(callback)
        hook.fire(1)
        assert seen == []

    def test_unsubscribe_unknown_raises(self):
        hook = EventHook("h")
        with pytest.raises(ValueError):
            hook.unsubscribe(lambda: None)

    def test_len_counts_subscribers(self):
        hook = EventHook("h")
        hook.subscribe(lambda: None)
        assert len(hook) == 1
