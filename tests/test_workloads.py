"""Tests for the LMbench drivers and application workload models."""

import pytest

from repro.workloads.apps import (
    ApacheWorkload,
    DhrystoneWorkload,
    IozoneWorkload,
    UntarWorkload,
    WhetstoneWorkload,
    default_applications,
)
from repro.workloads.lmbench import LMBENCH_OPS, LmbenchSuite


class TestLmbenchSuite:
    @pytest.fixture
    def suite(self, native_system):
        suite = LmbenchSuite(native_system, warmup=1, iterations=2)
        suite.setup()
        return suite

    def test_ops_match_table1_rows(self):
        assert LMBENCH_OPS[0] == "syscall stat"
        assert len(LMBENCH_OPS) == 9

    def test_every_op_measures_positive_latency(self, suite):
        for op in LMBENCH_OPS:
            result = suite.run_op(op)
            assert result.microseconds > 0, op

    def test_fork_is_the_slowest_class(self, suite):
        stat = suite.run_op("syscall stat").microseconds
        fork = suite.run_op("fork+exit").microseconds
        assert fork > 50 * stat

    def test_socket_slower_than_pipe(self, suite):
        pipe = suite.run_op("pipe lat").microseconds
        socket = suite.run_op("socket lat").microseconds
        assert socket > pipe

    def test_fork_execv_slower_than_fork_exit(self, suite):
        fork_exit = suite.run_op("fork+exit").microseconds
        fork_execv = suite.run_op("fork+execv").microseconds
        assert fork_execv > fork_exit

    def test_setup_is_idempotent_per_suite(self, native_system):
        suite = LmbenchSuite(native_system, warmup=0, iterations=1)
        with pytest.raises(RuntimeError):
            _ = suite.task  # before setup
        suite.setup()
        assert suite.task is not None


class TestApplicationWorkloads:
    @pytest.mark.parametrize("app_cls", [
        WhetstoneWorkload, DhrystoneWorkload, UntarWorkload,
        IozoneWorkload, ApacheWorkload,
    ])
    def test_runs_to_completion_on_native(self, native_system, app_cls):
        shell = native_system.spawn_init()
        app = app_cls(scale=0.03)
        app.prepare(native_system, shell)
        result = app.run(native_system, shell)
        assert result.cycles > 0
        # The shell is the only process left afterwards.
        assert list(native_system.kernel.procs.tasks) == [shell.pid]

    def test_runs_on_hypernel_with_monitors(self, monitored_system):
        shell = monitored_system.spawn_init()
        app = UntarWorkload(scale=0.03)
        app.prepare(monitored_system, shell)
        app.run(monitored_system, shell)
        assert monitored_system.mbm.events_detected > 0
        for monitor in monitored_system.monitors:
            assert monitor.alerts == []

    def test_default_applications_order(self):
        names = [app.name for app in default_applications()]
        assert names == ["whetstone", "dhrystone", "untar", "iozone", "apache"]

    def test_scale_shrinks_work(self, native_system):
        shell = native_system.spawn_init()
        small = UntarWorkload(scale=0.05)
        small.prepare(native_system, shell)
        small_cycles = small.run(native_system, shell).cycles
        big = UntarWorkload(scale=0.4)
        big_cycles = big.run(native_system, shell).cycles
        assert big_cycles > 2 * small_cycles

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            UntarWorkload(scale=0)

    def test_compute_bound_apps_have_low_kernel_share(self, native_system):
        shell = native_system.spawn_init()
        app = WhetstoneWorkload(scale=0.1)
        app.prepare(native_system, shell)
        syscalls_before = native_system.kernel.sys.stats.get("total")
        result = app.run(native_system, shell)
        syscalls = native_system.kernel.sys.stats.get("total") - syscalls_before
        # Far fewer syscalls than untar would issue for the same scale.
        assert syscalls < 200
        assert result.cycles > 1_000_000  # compute dominates

    def test_untar_is_dentry_heavy(self, native_system):
        shell = native_system.spawn_init()
        app = UntarWorkload(scale=0.05)
        app.prepare(native_system, shell)
        created_before = native_system.kernel.vfs.stats.get("nodes_created")
        app.run(native_system, shell)
        created = native_system.kernel.vfs.stats.get("nodes_created") - created_before
        assert created >= app._scaled(app.FILES)
